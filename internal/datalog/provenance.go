package datalog

import (
	"fmt"
	"time"
)

// Provenance: opt-in derivation recording. When enabled, every tuple
// carries a provCell naming the compiled rule that first produced it
// and the packed (relation, row) IDs of that derivation's body
// premises; base facts carry a sentinel. Engine.Why walks the cells
// into a bounded derivation tree.
//
// The recording path is a separate copy of the join code (evalItemProv
// and friends) so the default evaluation stays byte-identical when
// provenance is off. Premise rows are always rows visible at round
// start — inserted strictly before the derived tuple — so the
// provenance graph is acyclic by construction, and because mergeRound
// resolves "first derivation" in deterministic item order, the
// recorded trees are identical for any worker count.

// baseFact marks a tuple asserted directly rather than derived.
const baseFact = int32(-1)

// provCell records how one tuple entered its relation.
type provCell struct {
	rule     int32 // index into Engine.compiled; baseFact for asserted tuples
	premises []int64
}

// packTID packs a (relation id, row id) pair into one premise ID.
func packTID(relID, row int) int64 { return int64(relID)<<32 | int64(uint32(row)) }

func unpackTID(id int64) (relID, row int) { return int(id >> 32), int(uint32(id)) }

// EnableProvenance switches the engine into provenance-recording mode.
// Tuples already present (asserted or derived by an earlier Run) are
// backfilled as base facts; call it before asserting facts and running
// rules to get full derivation trees. Enabling is one-way and costs
// one cell per tuple plus a premise slice per derived tuple.
func (e *Engine) EnableProvenance() {
	if e.provOn {
		return
	}
	e.provOn = true
	for _, r := range e.relList {
		r.provOn = true
		for len(r.prov) < r.rows {
			r.prov = append(r.prov, provCell{rule: baseFact})
		}
	}
}

// ProvenanceEnabled reports whether EnableProvenance was called.
func (e *Engine) ProvenanceEnabled() bool { return e.provOn }

// Derivation is one node of a derivation tree: a tuple, the rule that
// first derived it (empty for base facts), and the premises of that
// derivation. Trees are bounded in depth and node count; a node whose
// expansion was cut off is marked Truncated.
type Derivation struct {
	Rel       string        `json:"rel"`
	Tuple     []string      `json:"tuple,omitempty"`
	Rule      string        `json:"rule,omitempty"`
	Premises  []*Derivation `json:"premises,omitempty"`
	Truncated bool          `json:"truncated,omitempty"`
}

// IsBase reports whether the node is an asserted fact.
func (d *Derivation) IsBase() bool { return d.Rule == "" }

// Leaves returns the base-fact leaves of the tree in visit order.
func (d *Derivation) Leaves() []*Derivation {
	var out []*Derivation
	var walk func(n *Derivation)
	walk = func(n *Derivation) {
		if n.IsBase() {
			out = append(out, n)
			return
		}
		for _, p := range n.Premises {
			walk(p)
		}
	}
	walk(d)
	return out
}

// whyMaxDepth / whyMaxNodes bound Why's derivation trees: transitive
// rules can have derivation chains as long as the database, and a
// human-readable explanation only needs the first few layers.
const (
	whyMaxDepth = 12
	whyMaxNodes = 512
)

// Why returns the bounded derivation tree of the given tuple, or nil
// when provenance is off or the tuple is not in the database.
func (e *Engine) Why(rel string, terms ...Sym) *Derivation {
	if !e.provOn {
		return nil
	}
	r, ok := e.rels[rel]
	if !ok || len(terms) != r.arity {
		return nil
	}
	row := r.lookup(terms)
	if row < 0 {
		return nil
	}
	budget := whyMaxNodes
	return e.explain(r, row, whyMaxDepth, &budget)
}

func (e *Engine) explain(r *Relation, row, depth int, budget *int) *Derivation {
	*budget--
	d := &Derivation{Rel: r.name}
	t := r.row(row)
	d.Tuple = make([]string, len(t))
	for i, s := range t {
		d.Tuple[i] = e.SymName(s)
	}
	if row >= len(r.prov) {
		return d // pre-provenance row: nothing recorded, treat as base
	}
	c := r.prov[row]
	if c.rule == baseFact {
		return d
	}
	if int(c.rule) < len(e.compiled) {
		d.Rule = e.compiled[c.rule].src
	} else {
		d.Rule = fmt.Sprintf("rule(%d)", c.rule)
	}
	if depth <= 0 {
		d.Truncated = true
		return d
	}
	for _, p := range c.premises {
		if *budget <= 0 {
			d.Truncated = true
			break
		}
		relID, prow := unpackTID(p)
		if relID < 0 || relID >= len(e.relList) {
			continue
		}
		pr := e.relList[relID]
		if prow >= pr.rows {
			continue
		}
		d.Premises = append(d.Premises, e.explain(pr, prow, depth-1, budget))
	}
	return d
}

// lookup returns the row ID of the exact tuple, or -1.
func (r *Relation) lookup(t []Sym) int {
	if r.arity == 0 {
		if r.rows > 0 {
			return 0
		}
		return -1
	}
	if len(r.table) == 0 {
		return -1
	}
	i := uint32(hashTuple(t)) & r.mask
	for {
		id := r.table[i]
		if id == 0 {
			return -1
		}
		if r.equalRow(int(id-1), t) {
			return int(id - 1)
		}
		i = (i + 1) & r.mask
	}
}

// RuleStat is one rule's cumulative evaluation cost across every Run
// of the engine.
type RuleStat struct {
	Rule    string        // rule source text
	Head    string        // head relation name
	Derived int           // new tuples this rule inserted
	Rounds  int           // semi-naive rounds the rule had work in
	Time    time.Duration // wall time spent evaluating its work items
}

// RuleStats returns per-rule evaluation stats in rule-definition order.
// Available whether or not provenance is enabled.
func (e *Engine) RuleStats() []RuleStat {
	out := make([]RuleStat, 0, len(e.compiled))
	for i, cr := range e.compiled {
		out = append(out, RuleStat{
			Rule:    cr.src,
			Head:    cr.headRel.name,
			Derived: int(e.ruleDerived[i]),
			Rounds:  int(e.ruleRounds[i]),
			Time:    time.Duration(e.ruleNanos[i]),
		})
	}
	return out
}

// evalItemProv mirrors evalItem, threading the premise stack so every
// emitted head tuple gets an aligned provCell.
func (e *Engine) evalItemProv(it *workItem, sc *scratch, out []Sym, cells []provCell) ([]Sym, []provCell) {
	cr, p := it.cr, it.plan
	env := sc.env
	d := &p.delta
	var boundSlots [maxArity]int
	for rowID := it.lo; rowID < it.hi; rowID++ {
		t := d.rel.row(rowID)
		nb := 0
		ok := true
		for ci := range d.terms {
			ct := &d.terms[ci]
			v := t[ci]
			switch {
			case ct.isConst:
				if ct.val != v {
					ok = false
				}
			case ct.slot >= 0:
				if env[ct.slot] == unboundSym {
					env[ct.slot] = v
					boundSlots[nb] = ct.slot
					nb++
				} else if env[ct.slot] != v {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			sc.prem = append(sc.prem[:0], packTID(d.rel.id, rowID))
			out, cells = e.joinBodyProv(cr, p, 0, env, out, cells, sc)
		}
		for i := 0; i < nb; i++ {
			env[boundSlots[i]] = unboundSym
		}
	}
	return out, cells
}

// joinBodyProv mirrors joinBody, pushing each matched positive
// literal's tuple ID onto the premise stack.
func (e *Engine) joinBodyProv(cr *crule, p *cplan, i int, env []Sym, out []Sym, cells []provCell, sc *scratch) ([]Sym, []provCell) {
	if i == len(p.body) {
		return emitHeadProv(cr, env, out, cells, sc.prem)
	}
	l := &p.body[i]
	switch l.builtin {
	case BuiltinNeq:
		a, b := termVal(&l.terms[0], env), termVal(&l.terms[1], env)
		if a != b {
			out, cells = e.joinBodyProv(cr, p, i+1, env, out, cells, sc)
		}
		return out, cells
	case BuiltinEq:
		ta, tb := &l.terms[0], &l.terms[1]
		av, abound := termBound(ta, env)
		bv, bbound := termBound(tb, env)
		switch {
		case abound && bbound:
			if av == bv {
				out, cells = e.joinBodyProv(cr, p, i+1, env, out, cells, sc)
			}
		case abound:
			if tb.slot < 0 {
				return e.joinBodyProv(cr, p, i+1, env, out, cells, sc)
			}
			env[tb.slot] = av
			out, cells = e.joinBodyProv(cr, p, i+1, env, out, cells, sc)
			env[tb.slot] = unboundSym
		case bbound:
			if ta.slot < 0 {
				return e.joinBodyProv(cr, p, i+1, env, out, cells, sc)
			}
			env[ta.slot] = bv
			out, cells = e.joinBodyProv(cr, p, i+1, env, out, cells, sc)
			env[ta.slot] = unboundSym
		}
		return out, cells
	}
	r := l.rel
	if r.arity == 0 {
		if r.rows > 0 {
			sc.prem = append(sc.prem, packTID(r.id, 0))
			out, cells = e.joinBodyProv(cr, p, i+1, env, out, cells, sc)
			sc.prem = sc.prem[:len(sc.prem)-1]
		}
		return out, cells
	}
	if l.lookupCol >= 0 {
		kt := &l.terms[l.lookupCol]
		key := kt.val
		if !kt.isConst {
			key = env[kt.slot]
		}
		for _, id := range r.index[l.lookupCol][key] {
			out, cells = e.joinRowProv(cr, p, i, l, int(id), env, out, cells, sc)
		}
		return out, cells
	}
	for id := 0; id < r.rows; id++ {
		out, cells = e.joinRowProv(cr, p, i, l, id, env, out, cells, sc)
	}
	return out, cells
}

// joinRowProv mirrors joinRow with the candidate row passed by ID so
// its tuple ID can join the premise stack.
func (e *Engine) joinRowProv(cr *crule, p *cplan, i int, l *clit, rowID int, env []Sym, out []Sym, cells []provCell, sc *scratch) ([]Sym, []provCell) {
	t := l.rel.row(rowID)
	var boundSlots [maxArity]int
	nb := 0
	ok := true
	for ci := range l.terms {
		ct := &l.terms[ci]
		v := t[ci]
		switch {
		case ct.isConst:
			if ct.val != v {
				ok = false
			}
		case ct.slot >= 0:
			if env[ct.slot] == unboundSym {
				env[ct.slot] = v
				boundSlots[nb] = ct.slot
				nb++
			} else if env[ct.slot] != v {
				ok = false
			}
		}
		if !ok {
			break
		}
	}
	if ok {
		sc.prem = append(sc.prem, packTID(l.rel.id, rowID))
		out, cells = e.joinBodyProv(cr, p, i+1, env, out, cells, sc)
		sc.prem = sc.prem[:len(sc.prem)-1]
	}
	for k := 0; k < nb; k++ {
		env[boundSlots[k]] = unboundSym
	}
	return out, cells
}

// emitHeadProv mirrors emitHead: the immediate-duplicate skip drops
// the tuple and its cell together, keeping the buffers aligned. The
// final database is identical to the provenance-off run because the
// merge deduplicates anyway.
func emitHeadProv(cr *crule, env []Sym, out []Sym, cells []provCell, prem []int64) ([]Sym, []provCell) {
	ha := len(cr.head)
	if ha == 0 {
		if len(out) == 0 {
			out = append(out, 0)
			cells = append(cells, provCell{rule: int32(cr.idx), premises: append([]int64(nil), prem...)})
		}
		return out, cells
	}
	var tup [maxArity]Sym
	for hi := range cr.head {
		ct := &cr.head[hi]
		if ct.isConst {
			tup[hi] = ct.val
		} else {
			tup[hi] = env[ct.slot]
		}
	}
	if n := len(out); n >= ha {
		same := true
		for k := 0; k < ha; k++ {
			if out[n-ha+k] != tup[k] {
				same = false
				break
			}
		}
		if same {
			return out, cells
		}
	}
	out = append(out, tup[:ha]...)
	cells = append(cells, provCell{rule: int32(cr.idx), premises: append([]int64(nil), prem...)})
	return out, cells
}
