package datalog

import (
	"fmt"
	"math/rand"
	"testing"
)

// reachRules installs the escape-analysis rule shape the incremental
// pipeline drives with deltas.
func reachRules(e *Engine) {
	e.MustRule("Reach(t, h) :- Root(t, h)")
	e.MustRule("Reach(t, h2) :- Reach(t, h1), HeapPT(h1, f, h2)")
	e.MustRule("Reach(t, h) :- Touches(t), StaticPT(h)")
	e.MustRule("StaticPT(h2) :- StaticPT(h1), HeapPT(h1, f, h2)")
}

func relSet(e *Engine, rel string, arity int) map[string]bool {
	out := make(map[string]bool)
	pat := make([]Sym, arity)
	for i := range pat {
		pat[i] = Wild
	}
	for _, row := range e.Query(rel, pat...) {
		key := ""
		for _, s := range row {
			key += e.SymName(s) + "|"
		}
		out[key] = true
	}
	return out
}

// TestDeltaRunMatchesColdRun checks the full incremental protocol
// (preload fixpoint rows → MarkFixpoint → RetractWhere dirty partitions
// → assert fresh facts → Run) against a cold evaluation of the same
// final fact base, over randomized reach-shaped programs.
func TestDeltaRunMatchesColdRun(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nThreads := 2 + rng.Intn(6)
			nObjs := 4 + rng.Intn(20)
			nHeap := rng.Intn(40)
			nStatics := rng.Intn(4)

			type fact struct{ t, h int }
			// Old and new root sets per thread; a random subset of threads
			// is dirty (their roots differ between base and new run).
			oldRoots := make([][]fact, nThreads)
			newRoots := make([][]fact, nThreads)
			dirty := make([]bool, nThreads)
			for th := 0; th < nThreads; th++ {
				n := rng.Intn(5)
				for i := 0; i < n; i++ {
					f := fact{th, rng.Intn(nObjs)}
					oldRoots[th] = append(oldRoots[th], f)
					newRoots[th] = append(newRoots[th], f)
				}
				if rng.Intn(2) == 0 {
					dirty[th] = true
					newRoots[th] = nil
					for i := 0; i < rng.Intn(5); i++ {
						newRoots[th] = append(newRoots[th], fact{th, rng.Intn(nObjs)})
					}
				}
			}
			type edge struct{ h1, f, h2 int }
			heap := make([]edge, 0, nHeap)
			for i := 0; i < nHeap; i++ {
				heap = append(heap, edge{rng.Intn(nObjs), rng.Intn(3), rng.Intn(nObjs)})
			}
			statics := make([]int, 0, nStatics)
			for i := 0; i < nStatics; i++ {
				statics = append(statics, rng.Intn(nObjs))
			}

			load := func(e *Engine, roots [][]fact) {
				for th := 0; th < nThreads; th++ {
					for _, f := range roots[th] {
						e.Fact("Root", e.IntSym('t', f.t), e.IntSym('h', f.h))
					}
					e.Fact("Touches", e.IntSym('t', th))
				}
				for _, ed := range heap {
					e.Fact("HeapPT", e.IntSym('h', ed.h1), e.IntSym('f', ed.f), e.IntSym('h', ed.h2))
				}
				for _, s := range statics {
					e.Fact("StaticPT", e.IntSym('h', s))
				}
			}

			// Base run: the previous version's fixpoint, from which the
			// incremental engine will harvest its preloaded partitions.
			base := NewEngine()
			load(base, oldRoots)
			reachRules(base)
			base.Run()

			// Cold reference over the new fact base.
			cold := NewEngine()
			load(cold, newRoots)
			reachRules(cold)
			cold.Run()

			// Incremental engine: preload heap + closed statics + every
			// thread's base Reach rows, declare the fixpoint, retract the
			// dirty partitions, assert their fresh roots, and Run.
			inc := NewEngine()
			for _, ed := range heap {
				inc.Fact("HeapPT", inc.IntSym('h', ed.h1), inc.IntSym('f', ed.f), inc.IntSym('h', ed.h2))
			}
			for _, row := range base.Query("StaticPT", Wild) {
				inc.Fact("StaticPT", inc.Sym(base.SymName(row[0])))
			}
			for _, row := range base.Query("Reach", Wild, Wild) {
				inc.Fact("Reach", inc.Sym(base.SymName(row[0])), inc.Sym(base.SymName(row[1])))
			}
			for th := 0; th < nThreads; th++ {
				if !dirty[th] {
					inc.Fact("Touches", inc.IntSym('t', th))
				}
			}
			reachRules(inc)
			inc.MarkFixpoint()
			inc.mustAtFixpoint()
			for th := 0; th < nThreads; th++ {
				if !dirty[th] {
					continue
				}
				inc.RetractWhere("Reach", 0, inc.IntSym('t', th))
				for _, f := range newRoots[th] {
					inc.Fact("Root", inc.IntSym('t', f.t), inc.IntSym('h', f.h))
				}
				inc.Fact("Touches", inc.IntSym('t', th))
			}
			inc.Run()

			for _, rel := range []struct {
				name  string
				arity int
			}{{"Reach", 2}, {"StaticPT", 1}} {
				want := relSet(cold, rel.name, rel.arity)
				got := relSet(inc, rel.name, rel.arity)
				if len(want) != len(got) {
					t.Fatalf("%s: cold %d rows, incremental %d rows", rel.name, len(want), len(got))
				}
				for k := range want {
					if !got[k] {
						t.Fatalf("%s: incremental run is missing tuple %s", rel.name, k)
					}
				}
			}
		})
	}
}

func TestRetractWhere(t *testing.T) {
	e := NewEngine()
	a, b, c := e.Sym("a"), e.Sym("b"), e.Sym("c")
	e.Fact("R", a, b)
	e.Fact("R", a, c)
	e.Fact("R", b, c)
	e.Fact("R", c, a)
	// Build an index first so retraction must invalidate it.
	if n := len(e.Query("R", a, Wild)); n != 2 {
		t.Fatalf("pre-retract Query = %d rows, want 2", n)
	}
	if n := e.RetractWhere("R", 0, a); n != 2 {
		t.Fatalf("RetractWhere removed %d rows, want 2", n)
	}
	if n := e.Count("R"); n != 2 {
		t.Fatalf("Count after retract = %d, want 2", n)
	}
	if len(e.Query("R", a, Wild)) != 0 {
		t.Fatal("retracted tuples still visible through the index")
	}
	if !e.Has("R", b, c) || !e.Has("R", c, a) {
		t.Fatal("surviving tuples lost after table rebuild")
	}
	if e.Has("R", a, b) {
		t.Fatal("retracted tuple still in dedup table")
	}
	// Re-asserting a retracted tuple must insert cleanly.
	e.Fact("R", a, b)
	if !e.Has("R", a, b) || e.Count("R") != 3 {
		t.Fatal("re-assert after retract failed")
	}
	// Missing relation / column out of range are no-ops.
	if e.RetractWhere("Nope", 0, a) != 0 || e.RetractWhere("R", 5, a) != 0 {
		t.Fatal("expected zero removals for bad relation/column")
	}
}

func TestRetractWhereAll(t *testing.T) {
	e := NewEngine()
	a, b := e.Sym("a"), e.Sym("b")
	e.Fact("R", a, b)
	e.Fact("R", a, a)
	if n := e.RetractWhere("R", 0, a); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if e.Count("R") != 0 {
		t.Fatal("relation should be empty")
	}
	e.Fact("R", b, a)
	if !e.Has("R", b, a) {
		t.Fatal("insert into fully retracted relation failed")
	}
}

func TestRetractWherePanicsWithProvenance(t *testing.T) {
	e := NewEngine()
	e.EnableProvenance()
	e.Fact("R", e.Sym("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("RetractWhere with provenance enabled should panic")
		}
	}()
	e.RetractWhere("R", 0, e.Sym("a"))
}

func TestMarkFixpointSkipsSeedingRound(t *testing.T) {
	e := NewEngine()
	a, b, c := e.Sym("a"), e.Sym("b"), e.Sym("c")
	// Preload an already-closed database: Path is the transitive closure
	// of Edge over {a->b->c}.
	e.Fact("Edge", a, b)
	e.Fact("Edge", b, c)
	e.Fact("Path", a, b)
	e.Fact("Path", b, c)
	e.Fact("Path", a, c)
	e.MustRule("Path(x, y) :- Edge(x, y)")
	e.MustRule("Path(x, z) :- Path(x, y), Edge(y, z)")
	e.MarkFixpoint()
	e.Run()
	// The fixpoint loop always probes once; the point is that the probe
	// found no delta to evaluate and no seeding round rederived anything.
	if st := e.Stats(); st.Derived != 0 || st.Iterations > 1 {
		t.Fatalf("Run after MarkFixpoint derived %d tuples in %d iterations, want a single empty probe", st.Derived, st.Iterations)
	}
	// A delta fact drives derivation without a full seeding round.
	d := e.Sym("d")
	e.Fact("Edge", c, d)
	e.Run()
	for _, want := range [][2]Sym{{c, d}, {b, d}, {a, d}} {
		if !e.Has("Path", want[0], want[1]) {
			t.Fatalf("delta run missed Path(%s, %s)", e.SymName(want[0]), e.SymName(want[1]))
		}
	}
	if e.Count("Path") != 6 {
		t.Fatalf("Path has %d rows, want 6", e.Count("Path"))
	}
}

func TestRows(t *testing.T) {
	e := NewEngine()
	a, b := e.Sym("a"), e.Sym("b")
	e.Fact("R", a, b)
	e.Fact("R", b, a)
	rows := e.Rows("R")
	if len(rows) != 2 || rows[0][0] != a || rows[1][0] != b {
		t.Fatalf("Rows returned %v, want insertion order", rows)
	}
	if e.Rows("Nope") != nil {
		t.Fatal("Rows of undeclared relation should be nil")
	}
}
