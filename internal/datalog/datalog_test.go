package datalog

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestTransitiveClosure(t *testing.T) {
	e := NewEngine()
	e.FactStrings("Edge", "a", "b")
	e.FactStrings("Edge", "b", "c")
	e.FactStrings("Edge", "c", "d")
	e.MustRule("Path(x, y) :- Edge(x, y)")
	e.MustRule("Path(x, z) :- Path(x, y), Edge(y, z)")
	e.Run()
	if got := e.Count("Path"); got != 6 {
		t.Fatalf("Path count = %d, want 6", got)
	}
	if !e.Has("Path", e.Sym("a"), e.Sym("d")) {
		t.Error("missing Path(a,d)")
	}
	if e.Has("Path", e.Sym("d"), e.Sym("a")) {
		t.Error("unexpected Path(d,a)")
	}
}

func TestCyclicClosureTerminates(t *testing.T) {
	e := NewEngine()
	e.FactStrings("Edge", "a", "b")
	e.FactStrings("Edge", "b", "a")
	e.MustRule("Path(x, y) :- Edge(x, y)")
	e.MustRule("Path(x, z) :- Path(x, y), Edge(y, z)")
	e.Run()
	if got := e.Count("Path"); got != 4 {
		t.Fatalf("Path count = %d, want 4 (a-a, a-b, b-a, b-b)", got)
	}
}

func TestNeqBuiltin(t *testing.T) {
	e := NewEngine()
	for _, n := range []string{"t1", "t2", "t3"} {
		e.FactStrings("Thread", n)
	}
	e.MustRule("Pair(x, y) :- Thread(x), Thread(y), x != y")
	e.Run()
	if got := e.Count("Pair"); got != 6 {
		t.Fatalf("Pair count = %d, want 6", got)
	}
	if e.Has("Pair", e.Sym("t1"), e.Sym("t1")) {
		t.Error("x != y must exclude the diagonal")
	}
}

func TestEqBuiltinBinds(t *testing.T) {
	e := NewEngine()
	e.FactStrings("A", "x1")
	e.MustRule("B(u, v) :- A(u), v = u")
	e.Run()
	if !e.Has("B", e.Sym("x1"), e.Sym("x1")) {
		t.Fatal("= builtin should bind v to u")
	}
}

func TestWildcardVariable(t *testing.T) {
	e := NewEngine()
	e.FactStrings("R", "a", "b")
	e.FactStrings("R", "a", "c")
	e.MustRule("Left(x) :- R(x, _)")
	e.Run()
	if got := e.Count("Left"); got != 1 {
		t.Fatalf("Left count = %d, want 1", got)
	}
}

func TestQueryPattern(t *testing.T) {
	e := NewEngine()
	e.FactStrings("R", "a", "b")
	e.FactStrings("R", "a", "c")
	e.FactStrings("R", "b", "c")
	got := e.Query("R", e.Sym("a"), Wild)
	if len(got) != 2 {
		t.Fatalf("Query returned %d rows, want 2", len(got))
	}
	for _, row := range got {
		if row[0] != e.Sym("a") {
			t.Errorf("row %v does not match pattern", row)
		}
	}
}

func TestThreeWayJoin(t *testing.T) {
	e := NewEngine()
	e.FactStrings("P", "v1", "h1")
	e.FactStrings("P", "v2", "h1")
	e.FactStrings("Use", "u1", "v1")
	e.FactStrings("Free", "f1", "v2")
	e.MustRule("Race(u, f) :- Use(u, uv), Free(f, fv), P(uv, h), P(fv, h)")
	e.Run()
	if !e.Has("Race", e.Sym("u1"), e.Sym("f1")) {
		t.Fatal("expected Race(u1,f1) via shared heap object")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"NoBody(x)",
		"lower(x) :- Edge(x, y)",
		"Head(x) :- x != y",         // no positive literal
		"Head(z) :- Edge(x, y)",     // unbound head var
		"Head(x) :- Edge(x, 'lit')", // constants in rule text
	}
	for _, src := range bad {
		if _, err := ParseRule(src); err == nil {
			t.Errorf("ParseRule(%q) should fail", src)
		}
	}
}

func TestRunIsIdempotent(t *testing.T) {
	e := NewEngine()
	e.FactStrings("Edge", "a", "b")
	e.FactStrings("Edge", "b", "c")
	e.MustRule("Path(x, y) :- Edge(x, y)")
	e.MustRule("Path(x, z) :- Path(x, y), Edge(y, z)")
	e.Run()
	n := e.Count("Path")
	it := e.Stats().Iterations
	e.Run()
	if e.Count("Path") != n {
		t.Fatalf("second Run changed Path: %d -> %d", n, e.Count("Path"))
	}
	// With no new rules and no new facts, the second Run must find an
	// empty delta immediately instead of re-deriving the fixpoint.
	if got := e.Stats().Iterations - it; got != 1 {
		t.Fatalf("no-op Run took %d iterations, want 1", got)
	}
}

// Rules added between Runs must see every fact already in the engine,
// and facts added between Runs must flow through every rule — and the
// result must match a fresh engine given everything up front.
func TestIncrementalRunMatchesFresh(t *testing.T) {
	inc := NewEngine()
	inc.FactStrings("Edge", "a", "b")
	inc.FactStrings("Edge", "b", "c")
	inc.MustRule("Path(x, y) :- Edge(x, y)")
	inc.MustRule("Path(x, z) :- Path(x, y), Edge(y, z)")
	inc.Run()

	// Layer a new rule family over the existing database, plus a fact
	// extending the chain; the late rule must fire over the pre-existing
	// Path tuples and the old rules over the new edge.
	inc.FactStrings("Edge", "c", "d")
	inc.FactStrings("Mark", "a")
	inc.MustRule("Reach(y) :- Mark(x), Path(x, y)")
	inc.Run()

	fresh := NewEngine()
	fresh.FactStrings("Edge", "a", "b")
	fresh.FactStrings("Edge", "b", "c")
	fresh.FactStrings("Edge", "c", "d")
	fresh.FactStrings("Mark", "a")
	fresh.MustRule("Path(x, y) :- Edge(x, y)")
	fresh.MustRule("Path(x, z) :- Path(x, y), Edge(y, z)")
	fresh.MustRule("Reach(y) :- Mark(x), Path(x, y)")
	fresh.Run()

	for _, rel := range []string{"Path", "Reach"} {
		got, want := inc.Query(rel, Wild, Wild), fresh.Query(rel, Wild, Wild)
		if len(got) != len(want) {
			t.Fatalf("%s: incremental %d tuples, fresh %d", rel, len(got), len(want))
		}
		for i := range got {
			for c := range got[i] {
				if inc.SymName(got[i][c]) != fresh.SymName(want[i][c]) {
					t.Fatalf("%s row %d: incremental %v, fresh %v", rel, i, got[i], want[i])
				}
			}
		}
	}
	// Derived counts only first-time insertions, so the incremental
	// engine's lifetime total must equal the fresh engine's single run.
	if inc.Stats().Derived != fresh.Stats().Derived {
		t.Fatalf("derived: incremental %d, fresh %d", inc.Stats().Derived, fresh.Stats().Derived)
	}
}

// Property: for random DAG edge sets, semi-naive closure equals a naive
// reachability computation.
func TestClosureMatchesNaive(t *testing.T) {
	f := func(edges [][2]uint8) bool {
		if len(edges) > 24 {
			edges = edges[:24]
		}
		e := NewEngine()
		adj := make(map[int][]int)
		for _, ed := range edges {
			a, b := int(ed[0])%12, int(ed[1])%12
			e.FactStrings("Edge", fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b))
			adj[a] = append(adj[a], b)
		}
		e.MustRule("Path(x, y) :- Edge(x, y)")
		e.MustRule("Path(x, z) :- Path(x, y), Edge(y, z)")
		e.Run()
		// Naive reachability (one or more steps).
		want := 0
		for src := 0; src < 12; src++ {
			seen := make(map[int]bool)
			var stack []int
			stack = append(stack, adj[src]...)
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[n] {
					continue
				}
				seen[n] = true
				stack = append(stack, adj[n]...)
			}
			want += len(seen)
		}
		return e.Count("Path") == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSymInterning(t *testing.T) {
	e := NewEngine()
	a1, a2 := e.Sym("x"), e.Sym("x")
	if a1 != a2 {
		t.Error("interning must be stable")
	}
	if e.SymName(a1) != "x" {
		t.Errorf("SymName = %q, want x", e.SymName(a1))
	}
}

// Indexes must stay consistent when facts arrive after the index was
// built (lookup -> insert -> lookup).
func TestIndexMaintainedAcrossInserts(t *testing.T) {
	e := NewEngine()
	e.FactStrings("Edge", "a", "b")
	e.MustRule("Out(x) :- Node(x), Edge(x, _)")
	e.FactStrings("Node", "a")
	e.Run() // builds the Edge index during the join
	if !e.Has("Out", e.Sym("a")) {
		t.Fatal("missing Out(a)")
	}
	// New facts after the first Run must land in the existing index.
	e.FactStrings("Edge", "c", "d")
	e.FactStrings("Node", "c")
	e.Run()
	if !e.Has("Out", e.Sym("c")) {
		t.Fatal("index not maintained for post-Run inserts")
	}
}

func TestDuplicateFactsIdempotent(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.FactStrings("R", "a", "b")
	}
	if e.Count("R") != 1 {
		t.Errorf("R count = %d, want 1", e.Count("R"))
	}
}
