package datalog

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// dump renders every relation of an engine as sorted tuple lists — the
// full externally observable fixpoint.
func dump(e *Engine) map[string][][]Sym {
	out := make(map[string][][]Sym)
	for name, r := range e.rels {
		pattern := make([]Sym, r.arity)
		for i := range pattern {
			pattern[i] = Wild
		}
		out[name] = e.Query(name, pattern...)
	}
	return out
}

// program is a buildable rule-and-fact set, applied to fresh engines so
// worker counts can be compared on identical inputs.
type program struct {
	rules []string
	facts func(e *Engine)
}

func (p program) build(workers int) *Engine {
	e := NewEngine()
	e.SetWorkers(workers)
	p.facts(e)
	for _, r := range p.rules {
		e.MustRule(r)
	}
	e.Run()
	return e
}

func requireIdentical(t *testing.T, p program, workerCounts ...int) {
	t.Helper()
	base := p.build(1)
	want := dump(base)
	for _, w := range workerCounts {
		e := p.build(w)
		got := dump(e)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d fixpoint differs from sequential:\n got %v\nwant %v", w, got, want)
		}
		if bs, es := base.Stats(), e.Stats(); bs.Facts != es.Facts || bs.Derived != es.Derived || bs.Iterations != es.Iterations {
			t.Fatalf("workers=%d stats differ: %+v vs %+v", w, es, bs)
		}
	}
}

// TestParallelMatchesSequentialFixed runs a diverse fixed rule set —
// recursion, multi-way joins, builtins, wildcards, self-joins — through
// 1, 2, 4 and 8 workers.
func TestParallelMatchesSequentialFixed(t *testing.T) {
	p := program{
		rules: []string{
			"Path(x, y) :- Edge(x, y)",
			"Path(x, z) :- Path(x, y), Edge(y, z)",
			"Sym2(x, y) :- Edge(x, y), Edge(y, x)",
			"Tri(x, y, z) :- Edge(x, y), Edge(y, z), Edge(z, x), x != y",
			"Eq2(x, y) :- Edge(x, _), y = x",
			"Pair(x, y) :- Node(x), Node(y), x != y",
			"Node(x) :- Edge(x, _)",
			"Node(y) :- Edge(_, y)",
		},
		facts: func(e *Engine) {
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 400; i++ {
				a, b := rng.Intn(40), rng.Intn(40)
				e.Fact("Edge", e.IntSym('n', a), e.IntSym('n', b))
			}
		},
	}
	requireIdentical(t, p, 2, 4, 8)
}

// TestParallelMatchesSequentialRandom generates random small rule
// programs over random fact sets and asserts every relation's fixpoint
// matches between the sequential engine and the parallel one.
func TestParallelMatchesSequentialRandom(t *testing.T) {
	preds := []string{"A", "B", "C", "D"}
	vars := []string{"x", "y", "z"}
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 131))
		var rules []string
		for ri := 0; ri < 2+rng.Intn(4); ri++ {
			head := preds[rng.Intn(len(preds))]
			hv := []string{vars[rng.Intn(len(vars))], vars[rng.Intn(len(vars))]}
			var body []string
			used := map[string]bool{}
			nBody := 1 + rng.Intn(3)
			for bi := 0; bi < nBody; bi++ {
				p := preds[rng.Intn(len(preds))]
				v1, v2 := vars[rng.Intn(len(vars))], vars[rng.Intn(len(vars))]
				body = append(body, fmt.Sprintf("%s(%s, %s)", p, v1, v2))
				used[v1], used[v2] = true, true
			}
			// Ensure head vars are bound: substitute unbound ones.
			for i, v := range hv {
				if !used[v] {
					for u := range used {
						hv[i] = u
						break
					}
				}
			}
			if rng.Intn(3) == 0 && used["x"] && used["y"] {
				body = append(body, "x != y")
			}
			rules = append(rules, fmt.Sprintf("%s(%s, %s) :- %s", head, hv[0], hv[1], joinStrs(body)))
		}
		seed := rng.Int63()
		p := program{
			rules: rules,
			facts: func(e *Engine) {
				frng := rand.New(rand.NewSource(seed))
				for i := 0; i < 120; i++ {
					e.Fact(preds[frng.Intn(len(preds))], e.IntSym('s', frng.Intn(12)), e.IntSym('s', frng.Intn(12)))
				}
			},
		}
		requireIdentical(t, p, 4)
	}
}

func joinStrs(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// TestIntSymRoundTrip pins the IntSym fast path to the Sym("h3")-style
// names the analyses previously formatted by hand.
func TestIntSymRoundTrip(t *testing.T) {
	e := NewEngine()
	s := e.IntSym('h', 42)
	if e.SymName(s) != "h42" {
		t.Fatalf("SymName = %q, want h42", e.SymName(s))
	}
	if s2 := e.Sym("h42"); s2 != s {
		t.Fatalf("Sym(\"h42\") = %d, want %d", s2, s)
	}
	tag, val, ok := e.IntSymVal(s)
	if !ok || tag != 'h' || val != 42 {
		t.Fatalf("IntSymVal = (%c, %d, %v), want (h, 42, true)", tag, val, ok)
	}
	if _, _, ok := e.IntSymVal(e.Sym("plain")); ok {
		t.Error("plain symbol must not decode as an IntSym")
	}
}

// TestQueryUsesIndex pins the constant-pattern fast path: a query with a
// bound column must return the same rows as a full scan.
func TestQueryUsesIndex(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		e.Fact("R", e.IntSym('a', rng.Intn(10)), e.IntSym('b', rng.Intn(10)), e.IntSym('c', rng.Intn(10)))
	}
	for a := 0; a < 10; a++ {
		want := 0
		for _, row := range e.Query("R", Wild, Wild, Wild) {
			if row[0] == e.IntSym('a', a) {
				want++
			}
		}
		got := e.Query("R", e.IntSym('a', a), Wild, Wild)
		if len(got) != want {
			t.Fatalf("indexed query for a%d returned %d rows, want %d", a, len(got), want)
		}
		for _, row := range got {
			if row[0] != e.IntSym('a', a) {
				t.Fatalf("indexed query returned non-matching row %v", row)
			}
		}
	}
}
