package detect

import (
	"context"

	"nadroid/internal/datalog"
	"nadroid/internal/obs"
	"nadroid/internal/race"
	"nadroid/internal/uaf"
)

// uafDetector is the classic §5 use-after-free family ported onto the
// registry. It derives racy (use, free) pairs from the shared engine's
// preloaded fact base and groups them into uaf.Warnings on the context,
// so the §6 filters and §7 report consume exactly the structures they
// always have.
type uafDetector struct{}

func (uafDetector) Name() string { return "uaf" }

func (uafDetector) Describe() string {
	return "use-after-free ordering violations: racy (use, free-null) field pairs (§5)"
}

func (uafDetector) count(dc *Context) int {
	if dc.UAF == nil {
		return 0
	}
	return len(dc.UAF.Warnings)
}

func (uafDetector) Detect(ctx context.Context, dc *Context) ([]Warning, error) {
	opts := race.Options{UseFreeOnly: true, Workers: dc.Workers}
	dc.AddRulesOnce("uaf", func(e *datalog.Engine) { race.InstallRacyRules(e, opts) })
	pctx, span := obs.Start(ctx, "race.pair")
	pairs := race.PairsFromEngine(pctx, dc.Engine, dc.Accesses, opts)
	span.SetAttr("pairs", len(pairs))
	span.End()
	obs.Add(ctx, "race_pairs", int64(len(pairs)))

	rr := &race.Result{Accesses: dc.Accesses, Pairs: pairs, Escape: dc.Escape}
	_, span = obs.Start(ctx, "uaf.group")
	d := uaf.Group(dc.Model, rr)
	tp := 0
	for _, w := range d.Warnings {
		tp += len(w.Pairs)
	}
	span.SetAttr("warnings", len(d.Warnings))
	span.SetAttr("thread_pairs", tp)
	span.End()
	obs.Add(ctx, "uaf_warnings", int64(len(d.Warnings)))
	obs.Add(ctx, "uaf_thread_pairs", int64(tp))

	dc.UAF = d
	return nil, nil
}
