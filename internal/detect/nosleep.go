package detect

import (
	"context"

	"nadroid/internal/nosleep"
)

// nosleepDetector is the §9 no-sleep energy-bug extension ported onto
// the registry, reusing the shared MHB graph instead of rebuilding it.
// Its structured result lands on the context (surfaced by the CLI's
// -nosleep flag); it reports no generic warnings, keeping the classic
// report byte-identical.
type nosleepDetector struct{}

func (nosleepDetector) Name() string { return "nosleep" }

func (nosleepDetector) Describe() string {
	return "no-sleep energy bugs: wake-lock acquires never guaranteed released (§9)"
}

func (nosleepDetector) count(dc *Context) int {
	if dc.NoSleep == nil {
		return 0
	}
	return len(dc.NoSleep.Warnings)
}

func (nosleepDetector) Detect(ctx context.Context, dc *Context) ([]Warning, error) {
	dc.NoSleep = nosleep.DetectWith(dc.Model, dc.MHB)
	return nil, nil
}
