package detect

import (
	"context"
	"fmt"

	"nadroid/internal/nosleep"
	"nadroid/internal/obs"
	"nadroid/internal/uaf"
)

// Results bundles one detector-pipeline run over a shared context.
type Results struct {
	// Enabled lists the detectors that ran, in canonical order.
	Enabled []string
	// UAF is the structured use-after-free detection (nil when the uaf
	// detector was disabled).
	UAF *uaf.Detection
	// NoSleep is the structured no-sleep result (nil when disabled).
	NoSleep *nosleep.Result
	// Warnings are the generic warnings of the non-structured families,
	// in detector order.
	Warnings []Warning
	// Counts maps detector name to the number of warnings it produced.
	Counts map[string]int
}

// counter lets a structured-result detector report its warning count
// (generic detectors are counted by the warnings they return).
type counter interface {
	count(dc *Context) int
}

// Run executes the selected detectors, in canonical order, against one
// shared context. Each detector runs under a "detect:<name>" span and
// lands its warning count in the "detector_warnings{detector=…}"
// pipeline counter. Detectors run sequentially: the shared Datalog
// engine is not safe for concurrent use, and per-detector phases keep
// timings attributable.
func Run(ctx context.Context, dc *Context, ds []Detector) (*Results, error) {
	res := &Results{Counts: make(map[string]int, len(ds))}
	for _, d := range ds {
		name := d.Name()
		res.Enabled = append(res.Enabled, name)
		dctx, span := obs.Start(ctx, "detect:"+name)
		ws, err := d.Detect(dctx, dc)
		if err != nil {
			span.End()
			return nil, fmt.Errorf("detector %s: %w", name, err)
		}
		n := len(ws)
		if c, ok := d.(counter); ok {
			n = c.count(dc)
		}
		span.SetAttr("warnings", n)
		span.End()
		res.Counts[name] = n
		obs.Add(ctx, fmt.Sprintf("detector_warnings{detector=%q}", name), int64(n))
		res.Warnings = append(res.Warnings, ws...)
	}
	res.UAF = dc.UAF
	res.NoSleep = dc.NoSleep
	return res, nil
}
