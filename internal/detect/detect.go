// Package detect is the pluggable detector subsystem: every bug-family
// detector (use-after-free, no-sleep, leaked-thread, lost-result)
// implements one interface and runs against a shared Context holding the
// threadified IR, the points-to result, the access/escape analyses, the
// must-happen-before graph, and one populated Datalog engine — computed
// once per app and consumed by every enabled detector.
//
// The registry fixes detector order, so output is deterministic no
// matter how a caller spells its selection. New families plug in by
// implementing Detector and appending to the registry; their Datalog
// rules layer onto the shared engine via Context.AddRulesOnce.
package detect

import (
	"context"
	"sort"
	"sync"

	"nadroid/internal/datalog"
	"nadroid/internal/escape"
	"nadroid/internal/fingerprint"
	"nadroid/internal/framework"
	"nadroid/internal/hb"
	"nadroid/internal/ir"
	"nadroid/internal/nosleep"
	"nadroid/internal/obs"
	"nadroid/internal/race"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// Warning is one generic detector warning — the shape the non-UAF
// families report in (the UAF family keeps its richer uaf.Warning and
// flows through the classic §7 report path unchanged).
type Warning struct {
	// Detector is the registry name of the family that produced it.
	Detector string
	// Tag is the per-family warning tag.
	Tag string
	// Subject names what the warning is about.
	Subject string
	// Site anchors the warning to one instruction.
	Site ir.InstrID
	// Lineage is the §7-style callback/thread chain of the subject.
	Lineage string
	// Detail is a one-line human explanation.
	Detail string
	// Fingerprint is the stable content-derived identity
	// (fingerprint.Generic, domain-separated from the UAF scheme).
	Fingerprint fingerprint.ID
}

// Detector is one bug-family detector.
type Detector interface {
	// Name is the stable registry name (used in flags, metrics, store
	// metadata, and cache keys).
	Name() string
	// Describe is a one-line human description for -list-detectors.
	Describe() string
	// Detect analyzes the shared context and returns the family's
	// generic warnings. Families with richer structured results (uaf,
	// nosleep) store them on the Context and return nil.
	Detect(ctx context.Context, dc *Context) ([]Warning, error)
}

// Context is the shared per-app analysis state. BuildContext computes
// it exactly once; every enabled detector consumes it.
type Context struct {
	// App is the application name (for warning subjects and logs).
	App string
	// Model is the threadified program (with its points-to result and
	// class hierarchy).
	Model *threadify.Model
	// Accesses are the per-thread field accesses (race.CollectAccesses).
	Accesses []race.Access
	// Escape is the thread-escape analysis result.
	Escape *escape.Result
	// MHB is the must-happen-before graph over modeled threads.
	MHB *hb.Graph
	// Engine is the shared Datalog engine, preloaded with the race fact
	// base (RdAcc/WrAcc/Esc, use/free only) and the async-error facts
	// (NativeThr, PostedThr, CallbackThr, BackgroundThr, SpawnEdge,
	// CompOf, TornDown). Detectors add their rules via AddRulesOnce and
	// may Run it again; semi-naive evaluation restarts from the full
	// contents, so late rules see every fact.
	Engine *datalog.Engine
	// Workers bounds detector-internal worker pools.
	Workers int

	// UAF is set by the uaf detector when it runs.
	UAF *uaf.Detection
	// NoSleep is set by the nosleep detector when it runs.
	NoSleep *nosleep.Result

	mu         sync.Mutex
	addedRules map[string]bool
}

// AddRulesOnce installs a named rule group on the shared engine at most
// once, so a detector can run repeatedly (or share rules with another
// family) without duplicating rules.
func (dc *Context) AddRulesOnce(name string, fn func(e *datalog.Engine)) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if dc.addedRules[name] {
		return
	}
	dc.addedRules[name] = true
	fn(dc.Engine)
}

// Options tunes context construction.
type Options struct {
	// Workers bounds the escape analysis and Datalog worker pools
	// (0 = GOMAXPROCS). Results are identical for any setting.
	Workers int
	// Provenance switches the shared Datalog engine into derivation
	// recording mode before the fact base is loaded, so every derived
	// tuple can later be explained via Engine.Why.
	Provenance bool
	// Escape, when non-nil, is a precomputed thread-escape result (e.g.
	// restored from the cold-start cache) that BuildContext uses instead
	// of running the escape Datalog solve — the most expensive part of
	// context construction.
	Escape *escape.Result
	// Accesses, when non-nil, is a precomputed access set (identical to
	// what race.CollectAccesses would return — the incremental pipeline
	// assembles it from reused per-thread partitions) that BuildContext
	// uses instead of collecting accesses itself.
	Accesses []race.Access
}

// BuildContext computes the shared analysis state for one app: access
// collection, escape analysis, the MHB graph, and the populated Datalog
// engine, each in its own span. The "detect_context_builds" counter
// asserts the compute-once contract in tests.
func BuildContext(ctx context.Context, app string, m *threadify.Model, opts Options) *Context {
	_, span := obs.Start(ctx, "race.collect-accesses")
	accesses := opts.Accesses
	if accesses == nil {
		accesses = race.CollectAccesses(m)
	}
	span.SetAttr("accesses", len(accesses))
	span.End()
	obs.Add(ctx, "race_accesses", int64(len(accesses)))

	esc := opts.Escape
	if esc == nil {
		_, span = obs.Start(ctx, "escape.analyze")
		esc = escape.AnalyzeWith(m, escape.Options{Workers: opts.Workers})
		span.End()
	}

	_, span = obs.Start(ctx, "hb.build")
	g := hb.BuildMHB(m)
	span.End()

	_, span = obs.Start(ctx, "detect.facts")
	e := datalog.NewEngine()
	e.SetWorkers(opts.Workers)
	if opts.Provenance {
		e.EnableProvenance()
	}
	race.PopulateFacts(e, accesses, esc, race.Options{UseFreeOnly: true, Workers: opts.Workers})
	emitAsyncFacts(e, m)
	span.SetAttr("facts", e.Stats().Facts)
	span.End()

	obs.Add(ctx, "detect_context_builds", 1)
	return &Context{
		App:        app,
		Model:      m,
		Accesses:   accesses,
		Escape:     esc,
		MHB:        g,
		Engine:     e,
		Workers:    opts.Workers,
		addedRules: make(map[string]bool),
	}
}

// emitAsyncFacts loads the thread-forest facts the async-error families
// (arXiv:1808.03178) join over: thread kinds, spawn edges, component
// ownership, and which components declare a teardown callback.
func emitAsyncFacts(e *datalog.Engine, m *threadify.Model) {
	thr := func(t int) datalog.Sym { return e.IntSym('t', t) }
	comp := func(c string) datalog.Sym { return e.Sym("c:" + c) }

	// Pre-declare so empty relations are still joinable.
	e.Relation("NativeThr", 1)
	e.Relation("PostedThr", 1)
	e.Relation("CallbackThr", 1)
	e.Relation("BackgroundThr", 1)
	e.Relation("SpawnEdge", 2)
	e.Relation("CompOf", 2)
	e.Relation("TornDown", 1)

	torn := make(map[string]bool)
	for _, t := range m.Threads {
		switch t.Kind {
		case threadify.KindNativeThread:
			e.Fact("NativeThr", thr(t.ID))
			e.Fact("BackgroundThr", thr(t.ID))
		case threadify.KindTaskBody:
			e.Fact("BackgroundThr", thr(t.ID))
		case threadify.KindEntryCallback:
			e.Fact("CallbackThr", thr(t.ID))
		case threadify.KindPostedCallback:
			e.Fact("CallbackThr", thr(t.ID))
			if t.Post == framework.PostRunnable || t.Post == framework.PostSendMessage {
				e.Fact("PostedThr", thr(t.ID))
			}
		}
		if t.Parent >= 0 {
			e.Fact("SpawnEdge", thr(t.Parent), thr(t.ID))
		}
		if t.Component != "" {
			e.Fact("CompOf", thr(t.ID), comp(t.Component))
			if _, seen := torn[t.Component]; !seen {
				torn[t.Component] = declaresTeardown(m, t.Component)
			}
		}
	}
	comps := make([]string, 0, len(torn))
	for c, down := range torn {
		if down {
			comps = append(comps, c)
		}
	}
	sort.Strings(comps)
	for _, c := range comps {
		e.Fact("TornDown", comp(c))
	}
}

// declaresTeardown walks the super chain for a non-abstract onDestroy —
// the component has an explicit teardown path a resource should be
// collected on. Framework stubs declare no bodies, so only app classes
// qualify.
func declaresTeardown(m *threadify.Model, class string) bool {
	if m.Pkg == nil || m.Pkg.Program == nil {
		return false
	}
	prog := m.Pkg.Program
	for cls := prog.Class(class); cls != nil; cls = prog.Class(cls.Super) {
		if mth := cls.Method("onDestroy"); mth != nil && !mth.Abstract {
			return true
		}
		if cls.Super == "" {
			break
		}
	}
	return false
}
