package detect

import (
	"context"
	"fmt"
	"sort"

	"nadroid/internal/datalog"
	"nadroid/internal/fingerprint"
	"nadroid/internal/framework"
	"nadroid/internal/ir"
	"nadroid/internal/pointsto"
	"nadroid/internal/threadify"
)

// The async-error families below reproduce two of the asynchronous
// programming error patterns cataloged by Fan et al. (arXiv:1808.03178)
// over the same threadified facts the UAF detector consumes:
//
//   - leaked-thread: a native background thread started from a callback
//     of a component that has an explicit teardown path (onDestroy),
//     with no join/interrupt anywhere in the component — the thread
//     outlives its component.
//   - lost-result: a background thread posts a result back to a looper
//     (Handler.post / sendMessage) of a component with a teardown path,
//     and nothing ever drains the queue (removeCallbacksAndMessages) —
//     the posted callback can run against a destroyed component, or the
//     result is silently dropped.
//
// Each family is a positive-Datalog candidate rule over the shared fact
// base plus a Go-side coverage subtraction (the engine has no negation):
// candidates with teardown handling evidence are dropped.

// asyncRules installs both candidate rules; the two detectors share the
// group so either may run first.
func asyncRules(e *datalog.Engine) {
	e.MustRule("LeakCand(t, c) :- NativeThr(t), SpawnEdge(p, t), CallbackThr(p), CompOf(t, c), TornDown(c)")
	e.MustRule("LostCand(t, c) :- PostedThr(t), SpawnEdge(p, t), BackgroundThr(p), CompOf(t, c), TornDown(c)")
}

// candThreads runs the shared engine and decodes one candidate relation
// into sorted thread IDs.
func candThreads(dc *Context, rel string) []int {
	dc.AddRulesOnce("async", asyncRules)
	e := dc.Engine
	e.Run()
	seen := make(map[int]bool)
	var out []int
	for _, row := range e.Query(rel, datalog.Wild, datalog.Wild) {
		_, tid, ok := e.IntSymVal(row[0])
		if !ok || seen[tid] {
			continue
		}
		seen[tid] = true
		out = append(out, tid)
	}
	sort.Ints(out)
	return out
}

// leakedThreadDetector flags background threads their component never
// joins or interrupts.
type leakedThreadDetector struct{}

func (leakedThreadDetector) Name() string { return "leaked-thread" }

func (leakedThreadDetector) Describe() string {
	return "background threads started from callbacks with no join/interrupt on any destroy path (arXiv:1808.03178)"
}

func (leakedThreadDetector) Detect(ctx context.Context, dc *Context) ([]Warning, error) {
	m := dc.Model
	var ws []Warning
	for _, tid := range candThreads(dc, "LeakCand") {
		th := m.Threads[tid]
		if threadControlled(m, th) {
			continue
		}
		ws = append(ws, Warning{
			Detector: "leaked-thread",
			Tag:      "leaked-thread",
			Subject:  fmt.Sprintf("thread %s of component %s", th.Entry.Method, th.Component),
			Site:     th.Site,
			Lineage:  m.Lineage(tid),
			Detail: fmt.Sprintf("started from callback %s; component %s declares onDestroy but never joins or interrupts it",
				spawnerEntry(m, th), th.Component),
			Fingerprint: fingerprint.Generic("leaked-thread", th.Site.Method, th.Entry.Method, th.Component),
		})
	}
	return ws, nil
}

// lostResultDetector flags results posted back from background threads
// that no teardown path ever cancels.
type lostResultDetector struct{}

func (lostResultDetector) Name() string { return "lost-result" }

func (lostResultDetector) Describe() string {
	return "results posted from background threads to components whose lifecycle may have passed teardown (arXiv:1808.03178)"
}

func (lostResultDetector) Detect(ctx context.Context, dc *Context) ([]Warning, error) {
	m := dc.Model
	var ws []Warning
	for _, tid := range candThreads(dc, "LostCand") {
		th := m.Threads[tid]
		if resultCancelled(m, th) {
			continue
		}
		ws = append(ws, Warning{
			Detector: "lost-result",
			Tag:      "lost-result",
			Subject:  fmt.Sprintf("posted callback %s of component %s", th.Entry.Method, th.Component),
			Site:     th.Site,
			Lineage:  m.Lineage(tid),
			Detail: fmt.Sprintf("posted from background thread %s; component %s declares onDestroy but never drains the queue",
				spawnerEntry(m, th), th.Component),
			Fingerprint: fingerprint.Generic("lost-result", th.Site.Method, th.Entry.Method, th.Component),
		})
	}
	return ws, nil
}

// spawnerEntry names the parent thread's entry method.
func spawnerEntry(m *threadify.Model, th *threadify.Thread) string {
	if th.Parent < 0 || th.Parent >= len(m.Threads) {
		return "?"
	}
	p := m.Threads[th.Parent]
	if p.Kind == threadify.KindDummyMain {
		return "main"
	}
	return p.Entry.Method
}

// threadControlled reports whether any thread of th's component reaches
// a join/interrupt whose receiver may be th's thread object. Opaque
// receivers (empty points-to sets) conservatively cover.
func threadControlled(m *threadify.Model, th *threadify.Thread) bool {
	for _, other := range m.Threads {
		if other.Kind == threadify.KindDummyMain || other.Component != th.Component {
			continue
		}
		for mc := range m.Reach(other.ID) {
			mth, err := m.H.MethodByRef(mc.Method)
			if err != nil || mth.Abstract {
				continue
			}
			for _, in := range mth.Instrs {
				if in.Op != ir.OpInvoke {
					continue
				}
				if framework.ClassifyThreadControl(m.H, in.Callee.Class, in.Callee.Name) == framework.ThreadControlNone {
					continue
				}
				objs := m.PTS.PointsTo(mc.Method, mc.Recv, in.B)
				if len(objs) == 0 {
					return true
				}
				for _, o := range objs {
					if o == th.Entry.Recv {
						return true
					}
				}
			}
		}
	}
	return false
}

// resultCancelled reports whether th's component may drain the queue
// the result was posted to: a Handler.removeCallbacks[AndMessages] on a
// handler aliasing the post site's receiver. Unresolvable sites and
// opaque receivers conservatively cover.
func resultCancelled(m *threadify.Model, th *threadify.Thread) bool {
	mth, err := m.H.MethodByRef(th.Site.Method)
	if err != nil || th.Site.Index < 0 || th.Site.Index >= len(mth.Instrs) {
		return true
	}
	post := mth.Instrs[th.Site.Index]
	if post.Op != ir.OpInvoke {
		return true
	}
	recv := make(map[pointsto.ObjID]bool)
	if th.Parent >= 0 {
		for mc := range m.Reach(th.Parent) {
			if mc.Method != th.Site.Method {
				continue
			}
			for _, o := range m.PTS.PointsTo(mc.Method, mc.Recv, post.B) {
				recv[o] = true
			}
		}
	}
	if len(recv) == 0 {
		return true
	}
	for _, other := range m.Threads {
		if other.Kind == threadify.KindDummyMain || other.Component != th.Component {
			continue
		}
		for mc := range m.Reach(other.ID) {
			cm, err := m.H.MethodByRef(mc.Method)
			if err != nil || cm.Abstract {
				continue
			}
			for _, in := range cm.Instrs {
				if in.Op != ir.OpInvoke {
					continue
				}
				if framework.ClassifyCancel(m.H, in.Callee.Class, in.Callee.Name) != framework.CancelRemoveCallbacks {
					continue
				}
				objs := m.PTS.PointsTo(mc.Method, mc.Recv, in.B)
				if len(objs) == 0 {
					return true
				}
				for _, o := range objs {
					if recv[o] {
						return true
					}
				}
			}
		}
	}
	return false
}
