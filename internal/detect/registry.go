package detect

import (
	"fmt"
	"strings"
)

// registry fixes the canonical detector order. Selection output always
// follows this order, so the same set spelled differently yields the
// same pipeline.
var registry = []Detector{
	uafDetector{},
	nosleepDetector{},
	leakedThreadDetector{},
	lostResultDetector{},
}

// All returns every registered detector in canonical order.
func All() []Detector {
	return append([]Detector(nil), registry...)
}

// Names returns the registered detector names in canonical order.
func Names() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.Name()
	}
	return out
}

// ByName returns the named detector.
func ByName(name string) (Detector, bool) {
	for _, d := range registry {
		if d.Name() == name {
			return d, true
		}
	}
	return nil, false
}

// Select resolves a detector-name set to detectors in canonical
// registry order, deduplicating repeats. nil selects every detector
// (the default); an explicitly empty set is an error, as is any unknown
// name (the error lists the valid names).
func Select(names []string) ([]Detector, error) {
	if names == nil {
		return All(), nil
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("detect: empty detector set (valid: %s)", strings.Join(Names(), ", "))
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			return nil, fmt.Errorf("detect: unknown detector %q (valid: %s)", n, strings.Join(Names(), ", "))
		}
		want[n] = true
	}
	var out []Detector
	for _, d := range registry {
		if want[d.Name()] {
			out = append(out, d)
		}
	}
	return out, nil
}

// Normalize canonicalizes a detector-name set the way cache and store
// keys need it: nil stays nil (default = all), and a set naming every
// detector collapses to nil so "all spelled out" and "default" address
// the same cached result. Other sets come back deduplicated in
// canonical registry order. Unknown names are reported like Select.
func Normalize(names []string) ([]string, error) {
	if names == nil {
		return nil, nil
	}
	ds, err := Select(names)
	if err != nil {
		return nil, err
	}
	if len(ds) == len(registry) {
		return nil, nil
	}
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name()
	}
	return out, nil
}
