package detect

import (
	"reflect"
	"strings"
	"testing"
)

func TestRegistryOrderIsStable(t *testing.T) {
	want := []string{"uaf", "nosleep", "leaked-thread", "lost-result"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registry order = %v, want %v", got, want)
	}
	for _, name := range want {
		d, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) missing", name)
		}
		if d.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, d.Name())
		}
		if d.Describe() == "" {
			t.Errorf("%s: empty description", name)
		}
	}
}

func TestSelectDefaultsToAll(t *testing.T) {
	ds, err := Select(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(registry) {
		t.Fatalf("Select(nil) = %d detectors, want %d", len(ds), len(registry))
	}
}

func TestSelectUnknownNameListsValid(t *testing.T) {
	_, err := Select([]string{"uaf", "bogus"})
	if err == nil {
		t.Fatal("Select with unknown name succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "bogus") {
		t.Errorf("error %q does not name the offender", msg)
	}
	for _, name := range Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list valid detector %q", msg, name)
		}
	}
}

func TestSelectEmptySetRejected(t *testing.T) {
	if _, err := Select([]string{}); err == nil {
		t.Fatal("Select(empty non-nil) succeeded; an explicitly empty set must be an error")
	}
}

func TestSelectOrderIndependentAndDeduped(t *testing.T) {
	a, err := Select([]string{"nosleep", "uaf", "nosleep"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select([]string{"uaf", "nosleep"})
	if err != nil {
		t.Fatal(err)
	}
	names := func(ds []Detector) []string {
		var out []string
		for _, d := range ds {
			out = append(out, d.Name())
		}
		return out
	}
	if !reflect.DeepEqual(names(a), names(b)) {
		t.Fatalf("selection depends on input order: %v vs %v", names(a), names(b))
	}
	if !reflect.DeepEqual(names(a), []string{"uaf", "nosleep"}) {
		t.Fatalf("selection = %v, want canonical registry order [uaf nosleep]", names(a))
	}
}

func TestNormalize(t *testing.T) {
	if got, err := Normalize(nil); err != nil || got != nil {
		t.Errorf("Normalize(nil) = %v, %v; want nil, nil", got, err)
	}
	// The full set in any spelling collapses to the default nil.
	full := []string{"lost-result", "uaf", "leaked-thread", "nosleep"}
	if got, err := Normalize(full); err != nil || got != nil {
		t.Errorf("Normalize(full set) = %v, %v; want nil, nil", got, err)
	}
	got, err := Normalize([]string{"nosleep", "uaf"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"uaf", "nosleep"}) {
		t.Errorf("Normalize subset = %v, want canonical [uaf nosleep]", got)
	}
	if _, err := Normalize([]string{"nope"}); err == nil {
		t.Error("Normalize accepted an unknown detector")
	}
}
