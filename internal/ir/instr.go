package ir

import (
	"fmt"
	"strings"
)

// Op enumerates instruction opcodes. The set mirrors the slice of Dalvik
// the paper's analyses consume: allocations, field accesses, calls,
// null-conditional branches, opaque branches (for path-insensitivity
// studies) and monitor regions.
type Op int

const (
	OpNop Op = iota
	// OpConstNull: A = null
	OpConstNull
	// OpConstInt: A = IntVal
	OpConstInt
	// OpConstStr: A = StrVal
	OpConstStr
	// OpNew: A = new Type; the allocation site is (method, index).
	OpNew
	// OpMove: A = B
	OpMove
	// OpGetField: A = B.Field — the paper's "use" bytecode (getfield).
	OpGetField
	// OpPutField: B.Field = A — a "free" when A holds null (putfield null).
	OpPutField
	// OpGetStatic: A = Field (static)
	OpGetStatic
	// OpPutStatic: Field = A (static)
	OpPutStatic
	// OpInvoke: A = B.Callee(Args...) — virtual dispatch on B's runtime class.
	OpInvoke
	// OpInvokeStatic: A = Callee(Args...)
	OpInvokeStatic
	// OpReturn: return A (A == NoReg for void returns).
	OpReturn
	// OpIfNull: if B == null goto Target
	OpIfNull
	// OpIfNonNull: if B != null goto Target
	OpIfNonNull
	// OpIfCond: opaque conditional branch to Target. Models branches on
	// flags/state the analysis cannot evaluate (path insensitivity).
	OpIfCond
	// OpGoto: unconditional jump to Target.
	OpGoto
	// OpMonitorEnter: acquire lock on object in B.
	OpMonitorEnter
	// OpMonitorExit: release lock on object in B.
	OpMonitorExit
	// OpThrow: throw the object in B (interp terminates the task).
	OpThrow
)

// NoReg marks an unused register operand (e.g. void return).
const NoReg = -1

var opNames = [...]string{
	OpNop:          "nop",
	OpConstNull:    "const-null",
	OpConstInt:     "const-int",
	OpConstStr:     "const-str",
	OpNew:          "new",
	OpMove:         "move",
	OpGetField:     "getfield",
	OpPutField:     "putfield",
	OpGetStatic:    "getstatic",
	OpPutStatic:    "putstatic",
	OpInvoke:       "invoke",
	OpInvokeStatic: "invoke-static",
	OpReturn:       "return",
	OpIfNull:       "if-null",
	OpIfNonNull:    "if-nonnull",
	OpIfCond:       "if-cond",
	OpGoto:         "goto",
	OpMonitorEnter: "monitor-enter",
	OpMonitorExit:  "monitor-exit",
	OpThrow:        "throw",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// OpFromName parses an opcode mnemonic; ok is false for unknown names.
func OpFromName(name string) (Op, bool) {
	for i, n := range opNames {
		if n == name {
			return Op(i), true
		}
	}
	return OpNop, false
}

// Instr is one instruction. Operand meaning depends on Op; unused operands
// are zero values (registers: NoReg by convention in printers, but 0 is
// also accepted when the op ignores the operand).
type Instr struct {
	Op     Op
	A      int       // destination register (or source for Return/Put*)
	B      int       // base/source register
	Args   []int     // call argument registers (excluding receiver)
	Field  FieldRef  // for field ops
	Type   string    // for OpNew: class name
	Callee MethodRef // for invokes: static callee
	Target string    // for branches: label
	IntVal int64
	StrVal string
}

// defsReg reports whether the instruction writes register A.
func (in Instr) defsReg() bool {
	switch in.Op {
	case OpConstNull, OpConstInt, OpConstStr, OpNew, OpMove, OpGetField, OpGetStatic:
		return true
	case OpInvoke, OpInvokeStatic:
		return in.A != NoReg
	}
	return false
}

// DefReg returns the register defined by this instruction and true, or
// (NoReg, false) if it defines none.
func (in Instr) DefReg() (int, bool) {
	if in.defsReg() {
		return in.A, true
	}
	return NoReg, false
}

// readRegs returns the registers read by this instruction.
func (in Instr) readRegs() []int {
	switch in.Op {
	case OpMove:
		return []int{in.B}
	case OpGetField:
		return []int{in.B}
	case OpPutField:
		return []int{in.B, in.A}
	case OpPutStatic:
		return []int{in.A}
	case OpInvoke:
		return append([]int{in.B}, in.Args...)
	case OpInvokeStatic:
		return append([]int(nil), in.Args...)
	case OpReturn:
		if in.A != NoReg {
			return []int{in.A}
		}
		return nil
	case OpIfNull, OpIfNonNull:
		return []int{in.B}
	case OpMonitorEnter, OpMonitorExit, OpThrow:
		return []int{in.B}
	}
	return nil
}

// Uses returns the registers read by this instruction (public wrapper).
func (in Instr) Uses() []int { return in.readRegs() }

// IsBranch reports whether the instruction may transfer control to Target.
func (in Instr) IsBranch() bool {
	switch in.Op {
	case OpGoto, OpIfNull, OpIfNonNull, OpIfCond:
		return true
	}
	return false
}

// IsTerminator reports whether control never falls through.
func (in Instr) IsTerminator() bool {
	switch in.Op {
	case OpGoto, OpReturn, OpThrow:
		return true
	}
	return false
}

// String renders the instruction in dexasm syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpConstNull:
		return fmt.Sprintf("r%d = null", in.A)
	case OpConstInt:
		return fmt.Sprintf("r%d = %d", in.A, in.IntVal)
	case OpConstStr:
		return fmt.Sprintf("r%d = %q", in.A, in.StrVal)
	case OpNew:
		return fmt.Sprintf("r%d = new %s", in.A, in.Type)
	case OpMove:
		return fmt.Sprintf("r%d = r%d", in.A, in.B)
	case OpGetField:
		return fmt.Sprintf("r%d = r%d.%s", in.A, in.B, in.Field)
	case OpPutField:
		return fmt.Sprintf("r%d.%s = r%d", in.B, in.Field, in.A)
	case OpGetStatic:
		return fmt.Sprintf("r%d = static %s", in.A, in.Field)
	case OpPutStatic:
		return fmt.Sprintf("static %s = r%d", in.Field, in.A)
	case OpInvoke:
		return fmt.Sprintf("r%d = r%d.%s(%s)", in.A, in.B, in.Callee, regList(in.Args))
	case OpInvokeStatic:
		return fmt.Sprintf("r%d = %s(%s)", in.A, in.Callee, regList(in.Args))
	case OpReturn:
		if in.A == NoReg {
			return "return"
		}
		return fmt.Sprintf("return r%d", in.A)
	case OpIfNull:
		return fmt.Sprintf("if r%d == null goto %s", in.B, in.Target)
	case OpIfNonNull:
		return fmt.Sprintf("if r%d != null goto %s", in.B, in.Target)
	case OpIfCond:
		return fmt.Sprintf("if ? goto %s", in.Target)
	case OpGoto:
		return fmt.Sprintf("goto %s", in.Target)
	case OpMonitorEnter:
		return fmt.Sprintf("lock r%d", in.B)
	case OpMonitorExit:
		return fmt.Sprintf("unlock r%d", in.B)
	case OpThrow:
		return fmt.Sprintf("throw r%d", in.B)
	}
	return in.Op.String()
}

func regList(regs []int) string {
	parts := make([]string, len(regs))
	for i, r := range regs {
		parts[i] = fmt.Sprintf("r%d", r)
	}
	return strings.Join(parts, ", ")
}
