package ir

import "sort"

// Block is a basic block: a maximal straight-line instruction range
// [Start, End) plus successor/predecessor edges by block index.
type Block struct {
	Index      int
	Start, End int // instruction index range, half open
	Succs      []int
	Preds      []int
}

// CFG is the control-flow graph of one method. Block 0 is the entry.
type CFG struct {
	Method *Method
	Blocks []*Block
	// blockOf maps an instruction index to its block index.
	blockOf []int
}

// BuildCFG derives the control-flow graph. Empty methods get a single
// empty entry block so dominance queries stay total.
func BuildCFG(m *Method) *CFG {
	n := len(m.Instrs)
	leader := make([]bool, n+1)
	if n > 0 {
		leader[0] = true
	}
	for i, in := range m.Instrs {
		if in.IsBranch() {
			leader[m.Index(in.Target)] = true
			if i+1 <= n {
				leader[min(i+1, n)] = true
			}
		}
		if in.IsTerminator() && i+1 <= n {
			leader[min(i+1, n)] = true
		}
	}
	// Labels that are jump targets of nothing still matter for dexasm
	// round trips but not for the CFG; only branch targets split blocks.
	cfg := &CFG{Method: m, blockOf: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			b := &Block{Index: len(cfg.Blocks), Start: start, End: i}
			cfg.Blocks = append(cfg.Blocks, b)
			start = i
		}
	}
	if len(cfg.Blocks) == 0 {
		cfg.Blocks = append(cfg.Blocks, &Block{Index: 0})
	}
	for _, b := range cfg.Blocks {
		for i := b.Start; i < b.End; i++ {
			cfg.blockOf[i] = b.Index
		}
	}
	// Edges.
	for _, b := range cfg.Blocks {
		if b.Start == b.End {
			continue
		}
		last := m.Instrs[b.End-1]
		addEdge := func(to int) {
			b.Succs = append(b.Succs, to)
			cfg.Blocks[to].Preds = append(cfg.Blocks[to].Preds, b.Index)
		}
		if last.IsBranch() {
			addEdge(cfg.blockOf[m.Index(last.Target)])
		}
		if !last.IsTerminator() && b.End < n {
			addEdge(cfg.blockOf[b.End])
		}
	}
	return cfg
}

// BlockOf returns the block index containing instruction i.
func (g *CFG) BlockOf(i int) int { return g.blockOf[i] }

// Reachable returns the set of blocks reachable from entry.
func (g *CFG) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	work := []int{0}
	seen[0] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// Dominators computes the immediate-dominator array idom[b] for every
// block (idom[0] == 0) using the Cooper–Harvey–Kennedy iterative
// algorithm. Unreachable blocks get idom -1.
func (g *CFG) Dominators() []int {
	n := len(g.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	// Reverse postorder.
	rpo := g.reversePostorder()
	pos := make([]int, n)
	for i, b := range rpo {
		pos[b] = i
	}
	intersect := func(a, b int) int {
		for a != b {
			for pos[a] > pos[b] {
				a = idom[a]
			}
			for pos[b] > pos[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func (g *CFG) reversePostorder() []int {
	seen := make([]bool, len(g.Blocks))
	var post []int
	var visit func(int)
	visit = func(b int) {
		seen[b] = true
		succs := append([]int(nil), g.Blocks[b].Succs...)
		sort.Ints(succs)
		for _, s := range succs {
			if !seen[s] {
				visit(s)
			}
		}
		post = append(post, b)
	}
	visit(0)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominates reports whether instruction a dominates instruction b: every
// path from entry to b passes through a. Within a block, earlier
// instructions dominate later ones.
func (g *CFG) Dominates(idom []int, a, b int) bool {
	ba, bb := g.blockOf[a], g.blockOf[b]
	if ba == bb {
		return a <= b
	}
	// Walk b's dominator chain up to entry.
	for bb != 0 {
		if idom[bb] == -1 {
			return false
		}
		bb = idom[bb]
		if bb == ba {
			return true
		}
	}
	return ba == 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
