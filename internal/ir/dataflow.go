package ir

// OriginKind classifies where a register's value came from, as far as a
// simple intra-procedural forward analysis can tell. The UAF definition
// ("free" = putfield of null), the IA filter (store of a fresh allocation)
// and the MA filter (store of a getter result) all key off this lattice.
type OriginKind int

const (
	// OriginUnknown is the lattice top: conflicting or untracked.
	OriginUnknown OriginKind = iota
	// OriginUndef means the register was never assigned on any path yet
	// (lattice bottom; merges as identity).
	OriginUndef
	// OriginNull: definitely null.
	OriginNull
	// OriginNew: definitely the object allocated at Site.
	OriginNew
	// OriginCall: definitely the return value of the invoke at Site.
	OriginCall
	// OriginParam: an incoming parameter or receiver.
	OriginParam
	// OriginLoad: loaded from the field at Site (a getfield/getstatic).
	OriginLoad
	// OriginConst: a non-null primitive constant.
	OriginConst
)

func (k OriginKind) String() string {
	switch k {
	case OriginUndef:
		return "undef"
	case OriginNull:
		return "null"
	case OriginNew:
		return "new"
	case OriginCall:
		return "call"
	case OriginParam:
		return "param"
	case OriginLoad:
		return "load"
	case OriginConst:
		return "const"
	}
	return "unknown"
}

// Origin is one lattice element: a kind plus, where meaningful, the
// instruction index that produced the value.
type Origin struct {
	Kind OriginKind
	Site int // producing instruction index for New/Call/Load; else -1
}

func mergeOrigin(a, b Origin) Origin {
	if a.Kind == OriginUndef {
		return b
	}
	if b.Kind == OriginUndef {
		return a
	}
	if a == b {
		return a
	}
	return Origin{Kind: OriginUnknown, Site: -1}
}

// OriginInfo holds the per-instruction origin states of one method.
type OriginInfo struct {
	m *Method
	// before[i][r] is the origin of register r immediately before
	// instruction i executes.
	before []map[int]Origin
}

// At returns the origin of register r immediately before instruction i.
func (oi *OriginInfo) At(i, r int) Origin {
	if o, ok := oi.before[i][r]; ok {
		return o
	}
	return Origin{Kind: OriginUndef, Site: -1}
}

// ComputeOrigins runs the forward value-origin dataflow over m's CFG.
func ComputeOrigins(m *Method) *OriginInfo {
	g := BuildCFG(m)
	n := len(m.Instrs)
	oi := &OriginInfo{m: m, before: make([]map[int]Origin, n+1)}
	entry := make(map[int]Origin)
	for r := 0; r <= m.NumArgs; r++ {
		entry[r] = Origin{Kind: OriginParam, Site: -1}
	}

	in := make([]map[int]Origin, len(g.Blocks))
	in[0] = entry
	// Worklist over blocks.
	work := []int{0}
	inWork := make([]bool, len(g.Blocks))
	inWork[0] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		state := copyState(in[b])
		blk := g.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			oi.before[i] = copyState(state)
			applyOrigin(&state, m.Instrs[i], i)
		}
		for _, s := range blk.Succs {
			if mergeInto(&in[s], state) {
				if !inWork[s] {
					work = append(work, s)
					inWork[s] = true
				}
			}
		}
	}
	// Instructions in unreachable blocks keep nil maps; At handles that.
	for i := range oi.before {
		if oi.before[i] == nil {
			oi.before[i] = map[int]Origin{}
		}
	}
	return oi
}

func applyOrigin(state *map[int]Origin, in Instr, idx int) {
	set := func(r int, o Origin) { (*state)[r] = o }
	switch in.Op {
	case OpConstNull:
		set(in.A, Origin{Kind: OriginNull, Site: idx})
	case OpConstInt, OpConstStr:
		set(in.A, Origin{Kind: OriginConst, Site: idx})
	case OpNew:
		set(in.A, Origin{Kind: OriginNew, Site: idx})
	case OpMove:
		set(in.A, (*state)[in.B])
	case OpGetField, OpGetStatic:
		set(in.A, Origin{Kind: OriginLoad, Site: idx})
	case OpInvoke, OpInvokeStatic:
		if in.A != NoReg {
			set(in.A, Origin{Kind: OriginCall, Site: idx})
		}
	}
}

func copyState(s map[int]Origin) map[int]Origin {
	out := make(map[int]Origin, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// mergeInto merges src into *dst, reporting whether *dst changed.
func mergeInto(dst *map[int]Origin, src map[int]Origin) bool {
	if *dst == nil {
		*dst = copyState(src)
		return true
	}
	changed := false
	for r, o := range src {
		old, ok := (*dst)[r]
		if !ok {
			(*dst)[r] = o
			changed = true
			continue
		}
		merged := mergeOrigin(old, o)
		if merged != old {
			(*dst)[r] = merged
			changed = true
		}
	}
	return changed
}

// IsFree reports whether instruction i of m is a "free" in the paper's
// sense: a putfield (or putstatic) storing a definitely-null value.
func IsFree(oi *OriginInfo, m *Method, i int) bool {
	in := m.Instrs[i]
	if in.Op != OpPutField && in.Op != OpPutStatic {
		return false
	}
	return oi.At(i, in.A).Kind == OriginNull
}

// IsUse reports whether instruction i of m is a "use": a getfield (or
// getstatic) retrieving a field value.
func IsUse(m *Method, i int) bool {
	op := m.Instrs[i].Op
	return op == OpGetField || op == OpGetStatic
}

// UsesOfDef returns the instruction indices that may read the value
// defined by instruction def (which must define a register), following
// moves transitively. The walk is path-insensitive: any read of the
// register reachable from def before a redefinition counts.
func UsesOfDef(m *Method, def int) []int {
	r, ok := m.Instrs[def].DefReg()
	if !ok {
		return nil
	}
	g := BuildCFG(m)
	type st struct {
		instr int
		reg   int
	}
	seen := make(map[st]bool)
	var out []int
	outSeen := make(map[int]bool)
	var walk func(i, reg int)
	walk = func(i, reg int) {
		for {
			if i >= len(m.Instrs) {
				return
			}
			key := st{i, reg}
			if seen[key] {
				return
			}
			seen[key] = true
			in := m.Instrs[i]
			for _, u := range in.Uses() {
				if u == reg && !outSeen[i] {
					outSeen[i] = true
					out = append(out, i)
				}
			}
			// Follow a move of our value into another register.
			if in.Op == OpMove && in.B == reg {
				walk(i+1, in.A)
			}
			if d, has := in.DefReg(); has && d == reg {
				return // redefined
			}
			if in.IsBranch() {
				walk(m.Index(in.Target), reg)
				if in.Op == OpGoto {
					return
				}
			}
			if in.IsTerminator() {
				return
			}
			i++
		}
	}
	_ = g
	walk(def+1, r)
	return out
}
