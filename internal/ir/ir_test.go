package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleMethod(t *testing.T) *Method {
	t.Helper()
	// void m():
	//   r1 = this.f
	//   if r1 == null goto end
	//   r2 = this.f
	//   r3 = r2.use()
	// end:
	//   return
	m := NewMethod("C", "m", 0)
	m.NumRegs = 4
	f := FieldRef{Class: "C", Name: "f"}
	m.Instrs = []Instr{
		{Op: OpGetField, A: 1, B: 0, Field: f},
		{Op: OpIfNull, B: 1, Target: "end"},
		{Op: OpGetField, A: 2, B: 0, Field: f},
		{Op: OpInvoke, A: 3, B: 2, Callee: MethodRef{Class: "F", Name: "use"}},
		{Op: OpReturn, A: NoReg},
	}
	m.Labels["end"] = 4
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return m
}

func TestCFGBasicBlocks(t *testing.T) {
	m := sampleMethod(t)
	g := BuildCFG(m)
	if len(g.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(g.Blocks))
	}
	b0 := g.Blocks[0]
	if b0.Start != 0 || b0.End != 2 {
		t.Errorf("block0 range [%d,%d), want [0,2)", b0.Start, b0.End)
	}
	if len(b0.Succs) != 2 {
		t.Errorf("block0 succs %v, want 2 edges", b0.Succs)
	}
	if got := g.BlockOf(3); got != 1 {
		t.Errorf("BlockOf(3) = %d, want 1", got)
	}
}

func TestDominators(t *testing.T) {
	m := sampleMethod(t)
	g := BuildCFG(m)
	idom := g.Dominators()
	// Entry dominates everything.
	for b := range g.Blocks {
		if !g.Dominates(idom, 0, g.Blocks[b].Start) && g.Blocks[b].Start != g.Blocks[b].End {
			t.Errorf("entry should dominate block %d", b)
		}
	}
	// The guarded use (instr 3) is dominated by the null check (instr 1).
	if !g.Dominates(idom, 1, 3) {
		t.Error("if-null should dominate guarded use")
	}
	// The guarded use does not dominate the return.
	if g.Dominates(idom, 3, 4) {
		t.Error("guarded use must not dominate return (join point)")
	}
}

func TestOriginNullTracking(t *testing.T) {
	// r1 = null; this.f = r1  => free.
	m := NewMethod("C", "clear", 0)
	m.NumRegs = 2
	f := FieldRef{Class: "C", Name: "f"}
	m.Instrs = []Instr{
		{Op: OpConstNull, A: 1},
		{Op: OpPutField, B: 0, A: 1, Field: f},
		{Op: OpReturn, A: NoReg},
	}
	oi := ComputeOrigins(m)
	if !IsFree(oi, m, 1) {
		t.Error("putfield of const-null must be a free")
	}
	if IsFree(oi, m, 0) {
		t.Error("const-null itself is not a free")
	}
}

func TestOriginMergeLosesNull(t *testing.T) {
	// Null on one path, new on the other: store is not definitely a free.
	m := NewMethod("C", "maybe", 0)
	m.NumRegs = 2
	f := FieldRef{Class: "C", Name: "f"}
	m.Instrs = []Instr{
		{Op: OpIfCond, Target: "alloc"},        // 0
		{Op: OpConstNull, A: 1},                // 1
		{Op: OpGoto, Target: "store"},          // 2
		{Op: OpNew, A: 1, Type: "F"},           // 3 alloc:
		{Op: OpPutField, B: 0, A: 1, Field: f}, // 4 store:
		{Op: OpReturn, A: NoReg},               // 5
	}
	m.Labels["alloc"] = 3
	m.Labels["store"] = 4
	oi := ComputeOrigins(m)
	if got := oi.At(4, 1).Kind; got != OriginUnknown {
		t.Errorf("merged origin = %v, want unknown", got)
	}
	if IsFree(oi, m, 4) {
		t.Error("merged null/new store must not be a free")
	}
}

func TestUsesOfDef(t *testing.T) {
	m := sampleMethod(t)
	uses := UsesOfDef(m, 2) // r2 = this.f
	if len(uses) != 1 || uses[0] != 3 {
		t.Fatalf("UsesOfDef = %v, want [3]", uses)
	}
	// The first load's value feeds only the null check.
	uses = UsesOfDef(m, 0)
	if len(uses) != 1 || uses[0] != 1 {
		t.Fatalf("UsesOfDef(load0) = %v, want [1]", uses)
	}
}

func TestUsesOfDefFollowsMoves(t *testing.T) {
	m := NewMethod("C", "m", 0)
	m.NumRegs = 4
	m.Instrs = []Instr{
		{Op: OpNew, A: 1, Type: "F"},
		{Op: OpMove, A: 2, B: 1},
		{Op: OpInvoke, A: 3, B: 2, Callee: MethodRef{Class: "F", Name: "use"}},
		{Op: OpReturn, A: NoReg},
	}
	uses := UsesOfDef(m, 0)
	want := map[int]bool{1: true, 2: true}
	if len(uses) != 2 || !want[uses[0]] || !want[uses[1]] {
		t.Fatalf("UsesOfDef = %v, want move and invoke", uses)
	}
}

func TestValidateCatchesBadLabel(t *testing.T) {
	m := NewMethod("C", "bad", 0)
	m.Instrs = []Instr{{Op: OpGoto, Target: "nowhere"}}
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for unresolved label")
	}
}

func TestValidateCatchesBadRegister(t *testing.T) {
	m := NewMethod("C", "bad", 0)
	m.Instrs = []Instr{{Op: OpMove, A: 5, B: 0}}
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for out-of-range register")
	}
}

func TestProgramDuplicateClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate class")
		}
	}()
	p := NewProgram()
	p.AddClass(NewClass("A", ""))
	p.AddClass(NewClass("A", ""))
}

func TestSplitRef(t *testing.T) {
	cases := []struct {
		ref       string
		cls, name string
		ok        bool
	}{
		{"java/lang/Object.toString", "java/lang/Object", "toString", true},
		{"C.m", "C", "m", true},
		{"noDotButTrailing.", "", "", false},
		{".leading", "", "", false},
		{"nodots", "", "", false},
	}
	for _, c := range cases {
		cls, name, ok := SplitRef(c.ref)
		if cls != c.cls || name != c.name || ok != c.ok {
			t.Errorf("SplitRef(%q) = (%q,%q,%v), want (%q,%q,%v)", c.ref, cls, name, ok, c.cls, c.name, c.ok)
		}
	}
}

// Property: mergeOrigin is commutative, idempotent, and OriginUndef is
// its identity — required for dataflow convergence.
func TestMergeOriginLattice(t *testing.T) {
	gen := func(k uint8, site int8) Origin {
		kind := OriginKind(int(k) % 8)
		s := int(site)%4 + 4 // positive site
		if kind == OriginUndef {
			s = -1 // Undef carries no site; -1 is its canonical form
		}
		return Origin{Kind: kind, Site: s}
	}
	comm := func(k1 uint8, s1 int8, k2 uint8, s2 int8) bool {
		a, b := gen(k1, s1), gen(k2, s2)
		return mergeOrigin(a, b) == mergeOrigin(b, a)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	idem := func(k uint8, s int8) bool {
		a := gen(k, s)
		return mergeOrigin(a, a) == a
	}
	if err := quick.Check(idem, nil); err != nil {
		t.Error(err)
	}
	ident := func(k uint8, s int8) bool {
		a := gen(k, s)
		undef := Origin{Kind: OriginUndef, Site: -1}
		return mergeOrigin(a, undef) == a && mergeOrigin(undef, a) == a
	}
	if err := quick.Check(ident, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dominates is reflexive and antisymmetric (for distinct
// reachable instructions in different blocks, at most one direction).
func TestDominatesPartialOrder(t *testing.T) {
	m := sampleMethod(t)
	g := BuildCFG(m)
	idom := g.Dominators()
	for i := range m.Instrs {
		if !g.Dominates(idom, i, i) {
			t.Errorf("Dominates must be reflexive at %d", i)
		}
	}
	for i := range m.Instrs {
		for j := range m.Instrs {
			if i == j || g.BlockOf(i) == g.BlockOf(j) {
				continue
			}
			if g.Dominates(idom, i, j) && g.Dominates(idom, j, i) {
				t.Errorf("antisymmetry violated between %d and %d", i, j)
			}
		}
	}
}

func TestDumpContainsInstrs(t *testing.T) {
	m := sampleMethod(t)
	d := m.Dump()
	for _, want := range []string{"r1 = r0.C.f", "if r1 == null goto end", "end:"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dump missing %q:\n%s", want, d)
		}
	}
}
