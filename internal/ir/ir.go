// Package ir defines the register-based intermediate representation that
// nAdroid-Go analyzes. It plays the role Soot's Jimple plays in the paper:
// a typed, class-structured program with explicit field accesses,
// allocations, calls, branches and monitor regions.
//
// A Program is a set of Classes. Each Class has Fields and Methods; each
// Method is a flat list of Instrs over an infinite register file. Branch
// targets are symbolic labels resolved by Method.Index. The cfg.go and
// dom.go files derive basic blocks and dominator trees on demand; analyses
// never mutate a Method after it is sealed.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Program is a closed world of classes, keyed by fully qualified name
// (e.g. "com/connectbot/ConsoleActivity").
type Program struct {
	classes map[string]*Class
	order   []string // insertion order, for deterministic iteration
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{classes: make(map[string]*Class)}
}

// AddClass inserts c. It panics if a class with the same name exists:
// duplicate class definitions indicate a corrupted package.
func (p *Program) AddClass(c *Class) {
	if c.Name == "" {
		panic("ir: class with empty name")
	}
	if _, dup := p.classes[c.Name]; dup {
		panic("ir: duplicate class " + c.Name)
	}
	p.classes[c.Name] = c
	p.order = append(p.order, c.Name)
}

// Class returns the class with the given name, or nil.
func (p *Program) Class(name string) *Class { return p.classes[name] }

// Classes returns all classes in insertion order.
func (p *Program) Classes() []*Class {
	out := make([]*Class, 0, len(p.order))
	for _, n := range p.order {
		out = append(out, p.classes[n])
	}
	return out
}

// NumClasses reports the number of classes.
func (p *Program) NumClasses() int { return len(p.order) }

// SortedClassNames returns class names sorted lexicographically.
func (p *Program) SortedClassNames() []string {
	out := append([]string(nil), p.order...)
	sort.Strings(out)
	return out
}

// Size returns the total instruction count across all methods; the corpus
// uses it as the stand-in for an app's LOC.
func (p *Program) Size() int {
	n := 0
	for _, c := range p.Classes() {
		for _, m := range c.Methods {
			n += len(m.Instrs)
		}
	}
	return n
}

// Class is a Java-like class: single superclass, interface list, fields
// and methods. Outer names the enclosing class for inner classes; DEvA's
// intra-class analysis scope is a class plus its inner classes.
type Class struct {
	Name       string
	Super      string // "" only for the root object class
	Interfaces []string
	Outer      string // enclosing class name, "" if top-level
	IsIface    bool
	Fields     []*Field
	Methods    []*Method

	fieldIdx  map[string]*Field
	methodIdx map[string]*Method
}

// NewClass returns a class extending super (use framework.Object for the
// root) with no members.
func NewClass(name, super string) *Class {
	return &Class{
		Name:      name,
		Super:     super,
		fieldIdx:  make(map[string]*Field),
		methodIdx: make(map[string]*Method),
	}
}

// AddField appends a field and indexes it by name.
func (c *Class) AddField(f *Field) *Field {
	if f.Class == "" {
		f.Class = c.Name
	}
	if _, dup := c.fieldIdx[f.Name]; dup {
		panic(fmt.Sprintf("ir: duplicate field %s.%s", c.Name, f.Name))
	}
	c.Fields = append(c.Fields, f)
	c.fieldIdx[f.Name] = f
	return f
}

// Field returns the named field declared on this class (not inherited).
func (c *Class) Field(name string) *Field { return c.fieldIdx[name] }

// AddMethod appends a method and indexes it by name. Method overloading
// is not modeled: one method per name per class.
func (c *Class) AddMethod(m *Method) *Method {
	if m.Class == "" {
		m.Class = c.Name
	}
	if _, dup := c.methodIdx[m.Name]; dup {
		panic(fmt.Sprintf("ir: duplicate method %s.%s", c.Name, m.Name))
	}
	c.Methods = append(c.Methods, m)
	c.methodIdx[m.Name] = m
	return m
}

// Method returns the named method declared on this class (not inherited).
func (c *Class) Method(name string) *Method { return c.methodIdx[name] }

// Field is a named, typed member. Type is a class name or a primitive
// ("int", "string"); only reference-typed fields can participate in UAFs.
type Field struct {
	Class  string
	Name   string
	Type   string
	Static bool
}

// Ref returns the canonical "Class.Name" spelling.
func (f *Field) Ref() string { return f.Class + "." + f.Name }

// FieldRef names a field symbolically inside an instruction. Resolution
// against the class hierarchy happens in package cha.
type FieldRef struct {
	Class string
	Name  string
}

func (r FieldRef) String() string { return r.Class + "." + r.Name }

// MethodRef names a method symbolically inside an invoke instruction.
type MethodRef struct {
	Class string
	Name  string
}

func (r MethodRef) String() string { return r.Class + "." + r.Name }

// Method is a single method body. Registers are dense ints starting at 0;
// register 0 is `this` for instance methods, parameters follow.
type Method struct {
	Class    string
	Name     string
	NumArgs  int // excluding receiver
	Static   bool
	Synch    bool // synchronized method: body runs holding the receiver lock
	Abstract bool
	Instrs   []Instr
	Labels   map[string]int // label -> index of labeled instruction

	NumRegs int // 1 + NumArgs + locals; maintained by the builder
}

// NewMethod returns an empty method. Callers normally use appbuilder
// rather than constructing methods by hand.
func NewMethod(class, name string, numArgs int) *Method {
	m := &Method{Class: class, Name: name, NumArgs: numArgs, Labels: make(map[string]int)}
	m.NumRegs = 1 + numArgs
	return m
}

// Ref returns the canonical "Class.Name" spelling.
func (m *Method) Ref() string { return m.Class + "." + m.Name }

// ThisReg returns the register holding the receiver (instance methods only).
func (m *Method) ThisReg() int { return 0 }

// ArgReg returns the register holding the i-th parameter (0-based).
func (m *Method) ArgReg(i int) int { return 1 + i }

// Index resolves a label to an instruction index. It panics on unknown
// labels because sealed methods are validated before analysis.
func (m *Method) Index(label string) int {
	i, ok := m.Labels[label]
	if !ok {
		panic(fmt.Sprintf("ir: unknown label %q in %s", label, m.Ref()))
	}
	return i
}

// Validate checks structural invariants: labels resolve, registers are in
// range, field/method refs are well formed. It returns the first problem.
func (m *Method) Validate() error {
	for i, in := range m.Instrs {
		regs := in.readRegs()
		if in.defsReg() {
			regs = append(regs, in.A)
		}
		for _, r := range regs {
			if r < 0 || r >= m.NumRegs {
				return fmt.Errorf("%s: instr %d (%s): register %d out of range [0,%d)", m.Ref(), i, in.Op, r, m.NumRegs)
			}
		}
		switch in.Op {
		case OpGoto, OpIfNull, OpIfNonNull, OpIfCond:
			if _, ok := m.Labels[in.Target]; !ok {
				return fmt.Errorf("%s: instr %d: unresolved label %q", m.Ref(), i, in.Target)
			}
		case OpGetField, OpPutField, OpGetStatic, OpPutStatic:
			if in.Field.Name == "" {
				return fmt.Errorf("%s: instr %d: missing field ref", m.Ref(), i)
			}
		case OpInvoke, OpInvokeStatic:
			if in.Callee.Name == "" {
				return fmt.Errorf("%s: instr %d: missing callee", m.Ref(), i)
			}
		}
	}
	for lbl, idx := range m.Labels {
		if idx < 0 || idx > len(m.Instrs) {
			return fmt.Errorf("%s: label %q out of range", m.Ref(), lbl)
		}
	}
	return nil
}

// Validate checks every method in the program.
func (p *Program) Validate() error {
	var errs []string
	for _, c := range p.Classes() {
		for _, m := range c.Methods {
			if m.Abstract {
				continue
			}
			if err := m.Validate(); err != nil {
				errs = append(errs, err.Error())
			}
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("ir: %s", strings.Join(errs, "; "))
	}
	return nil
}

// InstrID identifies one instruction site in a program.
type InstrID struct {
	Method string // canonical method ref "Class.Name"
	Index  int
}

func (id InstrID) String() string { return fmt.Sprintf("%s:%d", id.Method, id.Index) }

// Less orders InstrIDs for deterministic reporting.
func (id InstrID) Less(o InstrID) bool {
	if id.Method != o.Method {
		return id.Method < o.Method
	}
	return id.Index < o.Index
}
