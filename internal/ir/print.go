package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Dump renders a method body with labels and indices for debugging and
// golden tests.
func (m *Method) Dump() string {
	var b strings.Builder
	mods := ""
	if m.Static {
		mods += "static "
	}
	if m.Synch {
		mods += "synchronized "
	}
	fmt.Fprintf(&b, "%smethod %s(%d args)\n", mods, m.Ref(), m.NumArgs)
	labelAt := make(map[int][]string)
	for lbl, idx := range m.Labels {
		labelAt[idx] = append(labelAt[idx], lbl)
	}
	for i, in := range m.Instrs {
		if lbls := labelAt[i]; len(lbls) > 0 {
			sort.Strings(lbls)
			for _, l := range lbls {
				fmt.Fprintf(&b, "%s:\n", l)
			}
		}
		fmt.Fprintf(&b, "  %3d  %s\n", i, in)
	}
	if lbls := labelAt[len(m.Instrs)]; len(lbls) > 0 {
		sort.Strings(lbls)
		for _, l := range lbls {
			fmt.Fprintf(&b, "%s:\n", l)
		}
	}
	return b.String()
}

// Dump renders the whole class.
func (c *Class) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "class %s extends %s", c.Name, c.Super)
	if len(c.Interfaces) > 0 {
		fmt.Fprintf(&b, " implements %s", strings.Join(c.Interfaces, ", "))
	}
	b.WriteString("\n")
	for _, f := range c.Fields {
		static := ""
		if f.Static {
			static = "static "
		}
		fmt.Fprintf(&b, "  %sfield %s %s\n", static, f.Name, f.Type)
	}
	for _, m := range c.Methods {
		b.WriteString(indent(m.Dump(), "  "))
	}
	return b.String()
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
