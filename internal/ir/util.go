package ir

import "strings"

// SplitRef splits a canonical "Class.Name" member reference. Class names
// use '/' separators (java/lang/Object), so the final '.' separates the
// member name unambiguously.
func SplitRef(ref string) (class, name string, ok bool) {
	i := strings.LastIndexByte(ref, '.')
	if i <= 0 || i == len(ref)-1 {
		return "", "", false
	}
	return ref[:i], ref[i+1:], true
}

// ShortName returns the class base name without package qualifiers:
// "com/app/MainActivity" -> "MainActivity".
func ShortName(class string) string {
	if i := strings.LastIndexByte(class, '/'); i >= 0 {
		return class[i+1:]
	}
	return class
}
