package hb

import (
	"strings"
	"testing"

	"nadroid/internal/appbuilder"
	"nadroid/internal/framework"
	"nadroid/internal/threadify"
)

// figure3Model builds a model with service, AsyncTask and lifecycle
// structure for exercising all three MHB families.
func figure3Model(t *testing.T) *threadify.Model {
	t.Helper()
	b := appbuilder.New("hb")
	act := b.Activity("hb/A")
	act.Field("view", framework.View)

	conn := b.ServiceConn("hb/Conn")
	conn.Method("onServiceConnected", 1).Return()
	conn.Method("onServiceDisconnected", 1).Return()

	task := b.AsyncTaskClass("hb/T")
	dib := task.Method("doInBackground", 0)
	dib.InvokeVoid(dib.This(), "hb/T", "publishProgress")
	dib.Return()
	task.Method("onPreExecute", 0).Return()
	task.Method("onProgressUpdate", 0).Return()
	task.Method("onPostExecute", 0).Return()

	oc := act.Method("onCreate", 1)
	tk := oc.New("hb/T")
	oc.InvokeVoid(tk, "hb/T", "execute")
	oc.Return()
	os := act.Method("onStart", 0)
	cn := os.New("hb/Conn")
	os.InvokeVoid(os.This(), "hb/A", "bindService", cn)
	os.Return()
	act.Method("onResume", 0).Return()
	act.Method("onPause", 0).Return()
	act.Method("onDestroy", 0).Return()

	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func findThread(t *testing.T, m *threadify.Model, suffix string) int {
	t.Helper()
	for _, th := range m.Threads {
		if th.Kind != threadify.KindDummyMain && strings.HasSuffix(th.Entry.Method, suffix) {
			return th.ID
		}
	}
	t.Fatalf("no thread %q", suffix)
	return -1
}

func TestMHBService(t *testing.T) {
	m := figure3Model(t)
	g := BuildMHB(m)
	sc := findThread(t, m, "onServiceConnected")
	sd := findThread(t, m, "onServiceDisconnected")
	if !g.HB(sc, sd) {
		t.Error("SC must happen before SD")
	}
	if g.HB(sd, sc) {
		t.Error("SD must not happen before SC")
	}
}

func TestMHBAsyncTask(t *testing.T) {
	m := figure3Model(t)
	g := BuildMHB(m)
	pre := findThread(t, m, "onPreExecute")
	body := findThread(t, m, "doInBackground")
	prog := findThread(t, m, "onProgressUpdate")
	post := findThread(t, m, "onPostExecute")
	for _, c := range []struct{ a, b int }{
		{pre, body}, {pre, prog}, {pre, post}, {body, post}, {prog, post},
	} {
		if !g.HB(c.a, c.b) {
			t.Errorf("HB(%s, %s) expected", m.Threads[c.a].Name(), m.Threads[c.b].Name())
		}
	}
	if g.HB(post, pre) {
		t.Error("onPostExecute never precedes onPreExecute")
	}
}

func TestMHBLifecycle(t *testing.T) {
	m := figure3Model(t)
	g := BuildMHB(m)
	create := findThread(t, m, "A.onCreate")
	resume := findThread(t, m, "A.onResume")
	pause := findThread(t, m, "A.onPause")
	destroy := findThread(t, m, "A.onDestroy")
	if !g.HB(create, resume) || !g.HB(create, destroy) {
		t.Error("onCreate precedes all entry callbacks")
	}
	if !g.HB(resume, destroy) || !g.HB(pause, destroy) {
		t.Error("all entry callbacks precede onDestroy")
	}
	// The back-button cycle: no order between onResume and onPause.
	if g.HB(resume, pause) || g.HB(pause, resume) {
		t.Error("onResume/onPause must stay unordered (§6.1.1)")
	}
}

func TestDummyMainPrecedesAll(t *testing.T) {
	m := figure3Model(t)
	g := BuildMHB(m)
	for _, th := range m.Threads {
		if th.Kind == threadify.KindDummyMain {
			continue
		}
		if !g.HB(0, th.ID) {
			t.Errorf("dummy main must precede %s", th.Name())
		}
	}
}

func TestTransitivity(t *testing.T) {
	m := figure3Model(t)
	g := BuildMHB(m)
	n := g.Size()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if !g.HB(a, b) {
				continue
			}
			for c := 0; c < n; c++ {
				if g.HB(b, c) && !g.HB(a, c) {
					t.Fatalf("transitivity violated: %d->%d->%d", a, b, c)
				}
			}
		}
	}
}

func TestMayHappenInParallel(t *testing.T) {
	m := figure3Model(t)
	g := BuildMHB(m)
	resume := findThread(t, m, "A.onResume")
	pause := findThread(t, m, "A.onPause")
	create := findThread(t, m, "A.onCreate")
	if !g.MayHappenInParallel(resume, pause) {
		t.Error("unordered callbacks may happen in parallel")
	}
	if g.MayHappenInParallel(create, resume) {
		t.Error("ordered callbacks cannot happen in parallel")
	}
	if g.MayHappenInParallel(resume, resume) {
		t.Error("a thread is never parallel with itself")
	}
}

func TestHBOutOfRange(t *testing.T) {
	m := figure3Model(t)
	g := BuildMHB(m)
	if g.HB(-1, 0) || g.HB(0, g.Size()+5) {
		t.Error("out-of-range queries must be false")
	}
}

// Lifecycle MHB is per component: two activities' onCreate/onDestroy do
// not order each other.
func TestLifecycleMHBIsPerComponent(t *testing.T) {
	b := appbuilder.New("two")
	for _, name := range []string{"t/A1", "t/A2"} {
		act := b.Activity(name)
		act.Method("onCreate", 1).Return()
		act.Method("onDestroy", 0).Return()
	}
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := BuildMHB(m)
	c1 := findThread(t, m, "A1.onCreate")
	d2 := findThread(t, m, "A2.onDestroy")
	if g.HB(c1, d2) || g.HB(d2, c1) {
		t.Error("different components' lifecycles must stay unordered")
	}
	c2 := findThread(t, m, "A2.onCreate")
	if !g.HB(c2, d2) {
		t.Error("same component's onCreate must precede onDestroy")
	}
}
