// Package hb builds the static happens-before graph over modeled
// threads that the sound MHB filter consumes (§6.1.1). Three relation
// families are must-happens-before in Android:
//
//   - MHB-Service: onServiceConnected always precedes
//     onServiceDisconnected for the same connection.
//   - MHB-AsyncTask: onPreExecute precedes doInBackground and
//     onProgressUpdate; all three precede onPostExecute.
//   - MHB-Lifecycle: every entry callback of a component runs after its
//     onCreate and before its onDestroy. There is deliberately NO edge
//     among onResume/onPause/other UI callbacks — the back-button cycle
//     makes those orders circular (§6.1.1).
package hb

import (
	"nadroid/internal/framework"
	"nadroid/internal/threadify"
)

// Graph is a transitively closed must-happens-before relation over
// thread IDs.
type Graph struct {
	n    int
	edge []bool // n*n adjacency, true = row HB col
}

// HB reports whether thread a must happen before thread b.
func (g *Graph) HB(a, b int) bool {
	if a < 0 || b < 0 || a >= g.n || b >= g.n {
		return false
	}
	return g.edge[a*g.n+b]
}

// Size returns the number of threads covered.
func (g *Graph) Size() int { return g.n }

func (g *Graph) add(a, b int) {
	if a == b {
		return
	}
	g.edge[a*g.n+b] = true
}

// BuildMHB derives the sound happens-before graph from the thread
// forest.
func BuildMHB(m *threadify.Model) *Graph {
	n := len(m.Threads)
	g := &Graph{n: n, edge: make([]bool, n*n)}

	// Dummy main precedes everything.
	for _, t := range m.Threads {
		if t.Kind != threadify.KindDummyMain {
			g.add(0, t.ID)
		}
	}

	// Index threads by entry method name for the structured relations.
	nameOf := func(t *threadify.Thread) string {
		if t.Kind == threadify.KindDummyMain {
			return ""
		}
		_, name, _ := splitRef(t.Entry.Method)
		return name
	}

	for _, a := range m.Threads {
		for _, b := range m.Threads {
			if a.ID == b.ID {
				continue
			}
			an, bn := nameOf(a), nameOf(b)

			// MHB-Service: same connection object and bind site.
			if a.Post == framework.PostBindService && b.Post == framework.PostBindService &&
				a.Entry.Recv == b.Entry.Recv && a.Site == b.Site &&
				an == "onServiceConnected" && bn == "onServiceDisconnected" {
				g.add(a.ID, b.ID)
			}

			// MHB-AsyncTask: same task object and execute site.
			if sameTask(a, b) {
				switch {
				case an == "onPreExecute" && (bn == framework.AsyncTaskBody || bn == "onProgressUpdate" || bn == "onPostExecute"):
					g.add(a.ID, b.ID)
				case (an == framework.AsyncTaskBody || an == "onProgressUpdate") && bn == "onPostExecute":
					g.add(a.ID, b.ID)
				}
			}

			// MHB-Lifecycle: entry callbacks of the same component.
			if a.Kind == threadify.KindEntryCallback && b.Kind == threadify.KindEntryCallback &&
				a.Component != "" && a.Component == b.Component {
				if an == "onCreate" && bn != "onCreate" {
					g.add(a.ID, b.ID)
				}
				if bn == "onDestroy" && an != "onDestroy" {
					g.add(a.ID, b.ID)
				}
			}
		}
	}

	g.close()
	return g
}

// sameTask reports whether two threads belong to the same AsyncTask
// execution: same receiver object spawned from the same execute site.
func sameTask(a, b *threadify.Thread) bool {
	isTask := func(t *threadify.Thread) bool {
		return t.Post == framework.PostExecuteTask || t.Post == framework.PostPublishProgress
	}
	if !isTask(a) || !isTask(b) {
		return false
	}
	return a.Entry.Recv == b.Entry.Recv
}

// close computes the transitive closure (Floyd–Warshall over booleans).
func (g *Graph) close() {
	n := g.n
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !g.edge[i*n+k] {
				continue
			}
			row := g.edge[k*n : k*n+n]
			for j, v := range row {
				if v {
					g.edge[i*n+j] = true
				}
			}
		}
	}
}

// MayHappenInParallel reports the complement of the ordering: neither
// a HB b nor b HB a. This is the trivial MHP the paper replaces Chord's
// flow-sensitive MHP with (§5): exposed for ablation benchmarks.
func (g *Graph) MayHappenInParallel(a, b int) bool {
	return a != b && !g.HB(a, b) && !g.HB(b, a)
}

func splitRef(ref string) (string, string, bool) {
	for i := len(ref) - 1; i > 0; i-- {
		if ref[i] == '.' {
			return ref[:i], ref[i+1:], true
		}
	}
	return "", ref, false
}
