package report

import (
	"strings"
	"testing"

	"nadroid/internal/corpus"
	"nadroid/internal/datalog"
	"nadroid/internal/evidence"
	"nadroid/internal/filters"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

func connectBot(t *testing.T) (*threadify.Model, *uaf.Detection) {
	t.Helper()
	app, ok := corpus.ByName("ConnectBot")
	if !ok {
		t.Fatal("missing ConnectBot")
	}
	m, err := threadify.Build(app.Build(), threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := uaf.Detect(m)
	filters.Run(d)
	return m, d
}

func TestClassificationCategories(t *testing.T) {
	m, d := connectBot(t)
	rep := New("ConnectBot", d)
	// ConnectBot seeds 12 EC-PC (service UAFs) + 1 PC-PC (posted).
	if rep.ByCategory[ECPC] != 12 {
		t.Errorf("EC-PC = %d, want 12", rep.ByCategory[ECPC])
	}
	if rep.ByCategory[PCPC] != 1 {
		t.Errorf("PC-PC = %d, want 1", rep.ByCategory[PCPC])
	}
	_ = m
}

func TestRankingPutsSuspiciousFirst(t *testing.T) {
	_, d := connectBot(t)
	rep := New("ConnectBot", d)
	if len(rep.Entries) < 2 {
		t.Fatal("expected multiple entries")
	}
	rank := map[Category]int{CNT: 5, CRT: 4, PCPC: 3, ECPC: 2, ECEC: 1, TT: 0}
	for i := 1; i < len(rep.Entries); i++ {
		if rank[rep.Entries[i-1].Category] < rank[rep.Entries[i].Category] {
			t.Errorf("ordering violated at %d: %v before %v", i,
				rep.Entries[i-1].Category, rep.Entries[i].Category)
		}
	}
}

func TestLineagesPresent(t *testing.T) {
	_, d := connectBot(t)
	rep := New("ConnectBot", d)
	for _, e := range rep.Entries {
		if e.UseLineage == "" || e.FreeLineage == "" {
			t.Errorf("entry %s missing lineage", e.Warning.Key())
		}
		if !strings.HasPrefix(e.UseLineage, "main") {
			t.Errorf("lineage must start at the dummy main: %q", e.UseLineage)
		}
	}
}

// TestFingerprintsEmbedded: every entry carries a stable fingerprint,
// distinct per warning, present in both renderings.
func TestFingerprintsEmbedded(t *testing.T) {
	_, d := connectBot(t)
	rep := New("ConnectBot", d)
	seen := map[string]bool{}
	for _, e := range rep.Entries {
		fp := string(e.Fingerprint)
		if len(fp) != 16 {
			t.Fatalf("entry %s: fingerprint %q not 16 hex chars", e.Warning.Key(), fp)
		}
		if seen[fp] {
			t.Errorf("duplicate fingerprint %s", fp)
		}
		seen[fp] = true
		if !strings.Contains(rep.String(), "fp "+fp) {
			t.Errorf("String() missing fingerprint %s", fp)
		}
		if !strings.Contains(rep.CSV(), ","+fp+"\n") {
			t.Errorf("CSV() missing fingerprint column %s", fp)
		}
	}
}

func TestCSVShape(t *testing.T) {
	_, d := connectBot(t)
	rep := New("ConnectBot", d)
	csv := rep.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(rep.Entries)+1 {
		t.Fatalf("CSV rows = %d, want %d + header", len(lines), len(rep.Entries))
	}
	if !strings.HasPrefix(lines[0], "app,field,use,free,category") {
		t.Errorf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if !strings.HasPrefix(line, "ConnectBot,") {
			t.Errorf("row missing app column: %q", line)
		}
	}
}

// TestCSVWithEvidenceShape: the provenance-mode export is the classic
// schema plus one summary column — "-" cells without records, kind
// summaries with them — while CSV() itself is untouched.
func TestCSVWithEvidenceShape(t *testing.T) {
	_, d := connectBot(t)
	rep := New("ConnectBot", d)

	noEv := rep.CSVWithEvidence(nil)
	lines := strings.Split(strings.TrimSpace(noEv), "\n")
	if lines[0] != "app,field,use,free,category,use_lineage,free_lineage,fingerprint,evidence" {
		t.Errorf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if !strings.HasSuffix(line, ",-") {
			t.Errorf("row without a record must end in the '-' cell: %q", line)
		}
	}

	ev := map[string]*evidence.Evidence{
		string(rep.Entries[0].Fingerprint): {
			Derivation: &datalog.Derivation{Rel: "Racy"},
			Filters:    []filters.Verdict{{Filter: "MHB"}},
		},
	}
	withEv := strings.Split(strings.TrimSpace(rep.CSVWithEvidence(ev)), "\n")
	if !strings.HasSuffix(withEv[1], ",derivation+filters:1") {
		t.Errorf("row with a record = %q, want derivation+filters:1 cell", withEv[1])
	}
}

func TestStringRendering(t *testing.T) {
	_, d := connectBot(t)
	rep := New("ConnectBot", d)
	s := rep.String()
	for _, want := range []string{"13 potential UAF warning(s)", "use :", "free:", "via main"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestCategoryNames(t *testing.T) {
	want := map[Category]string{
		ECEC: "EC-EC", ECPC: "EC-PC", PCPC: "PC-PC", CRT: "C-RT", CNT: "C-NT", TT: "T-T",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%v String = %q, want %q", int(c), c.String(), name)
		}
	}
	if len(Categories()) != 6 {
		t.Errorf("Categories() = %d entries", len(Categories()))
	}
}

func TestClassifyPairDirectly(t *testing.T) {
	m, d := connectBot(t)
	_ = d
	// Build synthetic pairs over the real model's thread kinds.
	var ec, pc, th int
	for _, t2 := range m.Threads {
		switch t2.Kind {
		case threadify.KindEntryCallback:
			ec = t2.ID
		case threadify.KindPostedCallback:
			pc = t2.ID
		case threadify.KindTaskBody, threadify.KindNativeThread:
			th = t2.ID
		}
	}
	if got := Classify(m, uaf.ThreadPair{Use: ec, Free: ec}); got != ECEC {
		t.Errorf("EC/EC = %v", got)
	}
	if got := Classify(m, uaf.ThreadPair{Use: ec, Free: pc}); got != ECPC {
		t.Errorf("EC/PC = %v", got)
	}
	if got := Classify(m, uaf.ThreadPair{Use: pc, Free: pc}); got != PCPC {
		t.Errorf("PC/PC = %v", got)
	}
	_ = th // ConnectBot has no native threads; C-RT/C-NT covered elsewhere
}
