// Package report classifies surviving UAF warnings the way §7
// prescribes: by the origins of the use and free operations (EC-EC,
// EC-PC, PC-PC, C-RT, C-NT), with the callback/thread lineage attached
// so a programmer can reconstruct the event sequence behind each
// warning. It also renders the CSV the artifact's ResultAnalysis.csv
// contains.
package report

import (
	"fmt"
	"sort"
	"strings"

	"nadroid/internal/evidence"
	"nadroid/internal/fingerprint"
	"nadroid/internal/ir"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// Category is the §7 warning taxonomy.
type Category int

const (
	// ECEC: both sides are entry callbacks.
	ECEC Category = iota
	// ECPC: an entry callback against a posted callback.
	ECPC
	// PCPC: both sides posted callbacks.
	PCPC
	// CRT: a callback against a thread reachable from it.
	CRT
	// CNT: a callback against a non-reachable thread — the paper's
	// hypothesis holds these are likeliest harmful.
	CNT
	// TT: both sides native threads (normally pruned by the TT filter).
	TT
)

var categoryNames = [...]string{"EC-EC", "EC-PC", "PC-PC", "C-RT", "C-NT", "T-T"}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("cat(%d)", int(c))
}

// Categories lists all categories in display order.
func Categories() []Category { return []Category{ECEC, ECPC, PCPC, CRT, CNT, TT} }

// Classify buckets one thread pair.
//
// Thread reachability is transitive across thread creation and event
// posting (§7): a thread is Reachable (RT) relative to a callback when
// the callback is one of its ancestors in the spawn forest.
func Classify(m *threadify.Model, p uaf.ThreadPair) Category {
	tu, tf := m.Threads[p.Use], m.Threads[p.Free]
	isCallback := func(t *threadify.Thread) bool {
		return t.Kind == threadify.KindEntryCallback || t.Kind == threadify.KindPostedCallback
	}
	isThread := func(t *threadify.Thread) bool {
		return t.Kind == threadify.KindTaskBody || t.Kind == threadify.KindNativeThread
	}
	switch {
	case isCallback(tu) && isCallback(tf):
		ec := func(t *threadify.Thread) bool { return t.Kind == threadify.KindEntryCallback }
		switch {
		case ec(tu) && ec(tf):
			return ECEC
		case ec(tu) != ec(tf):
			return ECPC
		default:
			return PCPC
		}
	case isThread(tu) && isThread(tf):
		return TT
	default:
		cb, th := tu, tf
		if isThread(tu) {
			cb, th = tf, tu
		}
		if m.IsAncestor(cb.ID, th.ID) {
			return CRT
		}
		return CNT
	}
}

// ClassifyWarning returns the most-suspicious category across the
// warning's surviving pairs (CNT > CRT > PCPC > ECPC > ECEC > TT as the
// paper's harm hypotheses rank them).
func ClassifyWarning(m *threadify.Model, w *uaf.Warning) Category {
	rank := map[Category]int{CNT: 5, CRT: 4, PCPC: 3, ECPC: 2, ECEC: 1, TT: 0}
	best := TT
	bestRank := -1
	for _, p := range w.Pairs {
		c := Classify(m, p)
		if rank[c] > bestRank {
			bestRank = rank[c]
			best = c
		}
	}
	return best
}

// Entry is one rendered warning.
type Entry struct {
	Warning  *uaf.Warning
	Category Category
	// Fingerprint is the stable content-derived identity — the handle
	// baselines and run diffs use to track this warning across
	// re-analyses.
	Fingerprint fingerprint.ID
	// UseLineage / FreeLineage are the §7 callback-and-thread sequences.
	UseLineage, FreeLineage string
}

// Extra is one warning from a non-UAF detector family (leaked-thread,
// lost-result, no-sleep, …), carried alongside the classic §7 entries
// with its own detector-qualified tag and fingerprint.
type Extra struct {
	// Detector is the registry name of the family that produced it.
	Detector string
	// Tag is the per-family warning tag (e.g. "leaked-thread").
	Tag string
	// Subject names what the warning is about (a thread, a handler, …).
	Subject string
	// Site anchors the warning to one instruction.
	Site ir.InstrID
	// Lineage is the §7-style callback/thread chain of the subject.
	Lineage string
	// Detail is a one-line human explanation.
	Detail string
	// Fingerprint is the stable content-derived identity.
	Fingerprint fingerprint.ID
}

// Report is the rendered output for one application.
type Report struct {
	App     string
	Model   *threadify.Model
	Entries []Entry
	// ByCategory counts surviving warnings per category.
	ByCategory map[Category]int
	// Extras are warnings from the non-UAF detector families. They are
	// rendered only when present, so runs with the classic detector set
	// stay byte-identical to historical output.
	Extras []Extra
}

// New renders the surviving warnings of a detection.
func New(app string, d *uaf.Detection) *Report {
	r := &Report{App: app, Model: d.Model, ByCategory: make(map[Category]int)}
	for _, w := range d.Alive() {
		cat := ClassifyWarning(d.Model, w)
		r.ByCategory[cat]++
		e := Entry{Warning: w, Category: cat, Fingerprint: fingerprint.Warning(d.Model, w)}
		if len(w.Pairs) > 0 {
			e.UseLineage = d.Model.Lineage(w.Pairs[0].Use)
			e.FreeLineage = d.Model.Lineage(w.Pairs[0].Free)
		}
		r.Entries = append(r.Entries, e)
	}
	// Most suspicious first: the unsound filters double as ranking, and
	// within survivors the category hypothesis orders review effort.
	rank := map[Category]int{CNT: 5, CRT: 4, PCPC: 3, ECPC: 2, ECEC: 1, TT: 0}
	sort.SliceStable(r.Entries, func(i, j int) bool {
		if rank[r.Entries[i].Category] != rank[r.Entries[j].Category] {
			return rank[r.Entries[i].Category] > rank[r.Entries[j].Category]
		}
		return r.Entries[i].Warning.Key() < r.Entries[j].Warning.Key()
	})
	return r
}

// String renders a human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %d potential UAF warning(s) after filtering ==\n", r.App, len(r.Entries))
	for i, e := range r.Entries {
		w := e.Warning
		fmt.Fprintf(&b, "[%d] %s  field %s  fp %s\n", i+1, e.Category, w.Field, e.Fingerprint)
		fmt.Fprintf(&b, "    use : %s\n", w.Use)
		fmt.Fprintf(&b, "          via %s\n", e.UseLineage)
		fmt.Fprintf(&b, "    free: %s\n", w.Free)
		fmt.Fprintf(&b, "          via %s\n", e.FreeLineage)
	}
	if len(r.Extras) > 0 {
		fmt.Fprintf(&b, "== %s: %d additional detector warning(s) ==\n", r.App, len(r.Extras))
		for i, x := range r.Extras {
			fmt.Fprintf(&b, "[%d] %s/%s  %s  fp %s\n", i+1, x.Detector, x.Tag, x.Subject, x.Fingerprint)
			fmt.Fprintf(&b, "    site: %s\n", x.Site)
			fmt.Fprintf(&b, "          via %s\n", x.Lineage)
			fmt.Fprintf(&b, "    note: %s\n", x.Detail)
		}
	}
	return b.String()
}

// CSV renders the report as ResultAnalysis.csv rows:
// app,field,use,free,category,use_lineage,free_lineage,fingerprint.
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString("app,field,use,free,category,use_lineage,free_lineage,fingerprint\n")
	for _, e := range r.Entries {
		w := e.Warning
		fmt.Fprintf(&b, "%s,%s,%s,%s,%s,%q,%q,%s\n",
			r.App, w.Field, w.Use, w.Free, e.Category, e.UseLineage, e.FreeLineage, e.Fingerprint)
	}
	// Extras reuse the 8-column schema: subject in the field column, the
	// site in the use column, and the detector-qualified tag as category.
	for _, x := range r.Extras {
		fmt.Fprintf(&b, "%s,%s,%s,%s,%s,%q,%q,%s\n",
			r.App, x.Subject, x.Site, "-", x.Detector+":"+x.Tag, x.Lineage, x.Detail, x.Fingerprint)
	}
	return b.String()
}

// CSVWithEvidence renders the report with a ninth "evidence" column
// summarizing each warning's provenance record by fingerprint ("-"
// when no record exists, e.g. provenance was off). CSV() keeps the
// classic 8-column schema byte-for-byte; this is a separate schema for
// provenance-mode exports.
func (r *Report) CSVWithEvidence(ev map[string]*evidence.Evidence) string {
	var b strings.Builder
	b.WriteString("app,field,use,free,category,use_lineage,free_lineage,fingerprint,evidence\n")
	for _, e := range r.Entries {
		w := e.Warning
		fmt.Fprintf(&b, "%s,%s,%s,%s,%s,%q,%q,%s,%s\n",
			r.App, w.Field, w.Use, w.Free, e.Category, e.UseLineage, e.FreeLineage, e.Fingerprint,
			evidenceSummary(ev[string(e.Fingerprint)]))
	}
	for _, x := range r.Extras {
		fmt.Fprintf(&b, "%s,%s,%s,%s,%s,%q,%q,%s,%s\n",
			r.App, x.Subject, x.Site, "-", x.Detector+":"+x.Tag, x.Lineage, x.Detail, x.Fingerprint,
			evidenceSummary(ev[string(x.Fingerprint)]))
	}
	return b.String()
}

// evidenceSummary compresses a record into a cell: which evidence kinds
// are present, and how many filter verdicts the trail holds.
func evidenceSummary(e *evidence.Evidence) string {
	if e == nil {
		return "-"
	}
	var parts []string
	if e.Derivation != nil {
		parts = append(parts, "derivation")
	}
	if len(e.Aliasing) > 0 {
		parts = append(parts, "aliasing")
	}
	if len(e.Filters) > 0 {
		parts = append(parts, fmt.Sprintf("filters:%d", len(e.Filters)))
	}
	if e.Witness != nil {
		parts = append(parts, "witness")
	}
	if len(parts) == 0 {
		return "record"
	}
	return strings.Join(parts, "+")
}
