// Benchmarks regenerating every table and figure of the paper's
// evaluation (§8). Each benchmark reports, besides time, the headline
// numbers of its artifact as custom metrics so `go test -bench` output
// doubles as the reproduction record:
//
//	BenchmarkTable1Pipeline      — Table 1 (potential/sound/unsound warnings)
//	BenchmarkTable1Validation    — Table 1's true-harmful column (explorer)
//	BenchmarkFigure5SoundFilters — Figure 5(a) percentages
//	BenchmarkFigure5Unsound      — Figure 5(b) percentages
//	BenchmarkTable2Injection     — Table 2 (28 injected, missed, pruned)
//	BenchmarkTable3DEvA          — Table 3 (detected/filtered/not-detected)
//	BenchmarkPhase*              — §8.8 phase split
//	BenchmarkAblation*           — design-choice ablations (k, escape)
package nadroid_test

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"nadroid"
	"nadroid/internal/corpus"
	"nadroid/internal/detect"
	"nadroid/internal/deva"
	"nadroid/internal/dexasm"
	"nadroid/internal/dynrace"
	"nadroid/internal/escape"
	"nadroid/internal/eval"
	"nadroid/internal/explore"
	"nadroid/internal/filters"
	"nadroid/internal/inject"
	"nadroid/internal/interp"
	"nadroid/internal/nosleep"
	"nadroid/internal/obs"
	"nadroid/internal/pointsto"
	"nadroid/internal/race"
	"nadroid/internal/store"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// benchmarkTable1Pipeline runs the static pipeline (model + detect +
// filter) over the full 27-app corpus — the paper's Table 1 without the
// manual-validation column — at one corpus-level worker count.
func benchmarkTable1Pipeline(b *testing.B, workers int, provenance bool) {
	var work []nadroid.CorpusApp
	for _, app := range corpus.Apps() {
		work = append(work, nadroid.CorpusApp{Name: app.Name(), Build: app.Build})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var pot, sound, unsound, records int
		opts := nadroid.CorpusOptions{Workers: workers, Analysis: nadroid.Options{Provenance: provenance}}
		for _, r := range nadroid.AnalyzeCorpus(work, opts) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			pot += r.Result.Stats.Potential
			sound += r.Result.Stats.AfterSound
			unsound += r.Result.Stats.AfterUnsound
			records += len(r.Result.Evidence)
		}
		b.ReportMetric(float64(pot), "potential")
		b.ReportMetric(float64(sound), "after-sound")
		b.ReportMetric(float64(unsound), "after-unsound")
		if provenance {
			b.ReportMetric(float64(records), "evidence-records")
		}
	}
}

// BenchmarkTable1Pipeline is the single-core reference sweep (one app at
// a time), comparable across releases.
func BenchmarkTable1Pipeline(b *testing.B) { benchmarkTable1Pipeline(b, 1, false) }

// BenchmarkTable1PipelineParallel fans the corpus across GOMAXPROCS
// workers via nadroid.AnalyzeCorpus; the headline metrics must match the
// sequential run exactly.
func BenchmarkTable1PipelineParallel(b *testing.B) { benchmarkTable1Pipeline(b, 0, false) }

// BenchmarkTable1PipelineProvenance is the sequential sweep in
// provenance mode: every derived tuple records its first derivation and
// every warning assembles an evidence record. The delta against
// BenchmarkTable1Pipeline is the provenance overhead quoted in
// EXPERIMENTS.md; the headline warning counts must not move.
func BenchmarkTable1PipelineProvenance(b *testing.B) { benchmarkTable1Pipeline(b, 1, true) }

// BenchmarkTable1Validation regenerates the true-harmful column on the
// apps that carry seeded bugs (the explorer dominates, so the corpus is
// restricted to keep iterations tractable). It measures the store-backed
// steady state: an untimed warm-up run populates the IR and witness
// caches, so the timed iterations pay only detection + filtering + cache
// replay — the cost a persisting deployment pays on every run after the
// first. BenchmarkTable1ValidationCold keeps the uncached number.
func BenchmarkTable1Validation(b *testing.B) {
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sweep := func() int {
		harmful := 0
		for _, name := range []string{"ConnectBot", "Aard", "QKSMS", "Music"} {
			app, _ := corpus.ByName(name)
			res, err := nadroid.AnalyzeSource(context.Background(),
				dexasm.Format(app.Build()), nadroid.Options{
					Validate: true,
					Explore:  explore.Options{MaxSchedules: 3000},
					Store:    st,
					IRCache:  true,
				})
			if err != nil {
				b.Fatal(err)
			}
			harmful += len(res.Harmful)
		}
		return harmful
	}
	sweep() // cold warm-up: modeling + full exploration, cache population
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(sweep()), "true-harmful")
	}
}

// BenchmarkTable1ValidationCold is the uncached reference: every
// iteration models and explores from scratch (no store). The ratio to
// BenchmarkTable1Validation is the headline win of the derived caches.
func BenchmarkTable1ValidationCold(b *testing.B) {
	apps := []string{"ConnectBot", "Aard", "QKSMS", "Music"}
	for i := 0; i < b.N; i++ {
		harmful := 0
		for _, name := range apps {
			app, _ := corpus.ByName(name)
			res, err := nadroid.Analyze(app.Build(), nadroid.Options{
				Validate: true,
				Explore:  explore.Options{MaxSchedules: 3000},
			})
			if err != nil {
				b.Fatal(err)
			}
			harmful += len(res.Harmful)
		}
		b.ReportMetric(float64(harmful), "true-harmful")
	}
}

// BenchmarkFigure5SoundFilters measures the independent effectiveness of
// MHB/IG/IA over the 20 test apps (Figure 5(a)).
func BenchmarkFigure5SoundFilters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := eval.Figure5Data()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pct(f.SoundRemoved[filters.NameMHB], f.Potential), "MHB-%")
		b.ReportMetric(pct(f.SoundRemoved[filters.NameIG], f.Potential), "IG-%")
		b.ReportMetric(pct(f.SoundRemoved[filters.NameIA], f.Potential), "IA-%")
		b.ReportMetric(pct(f.Potential-f.AfterSound, f.Potential), "all-%")
	}
}

// BenchmarkFigure5Unsound measures mayHB/MA/UR/TT after the sound pass
// (Figure 5(b)).
func BenchmarkFigure5Unsound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := eval.Figure5Data()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pct(f.UnsoundRemoved["mayHB"], f.AfterSound), "mayHB-%")
		b.ReportMetric(pct(f.UnsoundRemoved[filters.NameMA], f.AfterSound), "MA-%")
		b.ReportMetric(pct(f.UnsoundRemoved[filters.NameUR], f.AfterSound), "UR-%")
		b.ReportMetric(pct(f.UnsoundRemoved[filters.NameTT], f.AfterSound), "TT-%")
		b.ReportMetric(pct(f.AfterSound-f.AfterUnsound, f.AfterSound), "all-%")
	}
}

// BenchmarkTable2Injection regenerates the false-negative study: 28
// artificial UAFs, of which 2 are missed (framework-mediated binder) and
// 3 pruned by the unsound CHB filter.
func BenchmarkTable2Injection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := inject.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		all, missed, pruned := inject.Totals(rows)
		b.ReportMetric(float64(all), "injected")
		b.ReportMetric(float64(missed), "missed")
		b.ReportMetric(float64(pruned), "pruned-unsound")
	}
}

// BenchmarkTable3DEvA regenerates the baseline comparison on the
// training apps.
func BenchmarkTable3DEvA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table3()
		if err != nil {
			b.Fatal(err)
		}
		var filtered, reported, notDetected int
		for _, r := range rows {
			switch {
			case !r.Detected:
				notDetected++
			case r.Filtered:
				filtered++
			default:
				reported++
			}
		}
		b.ReportMetric(float64(len(rows)), "deva-warnings")
		b.ReportMetric(float64(filtered), "nadroid-filtered")
		b.ReportMetric(float64(reported), "nadroid-reported")
		b.ReportMetric(float64(notDetected), "nadroid-missed")
	}
}

// BenchmarkAnalyze is the untraced full-pipeline reference on a
// mid-sized app: the number BenchmarkAnalyzeTraced is compared against
// to keep the observability layer's idle cost within a few percent.
func BenchmarkAnalyze(b *testing.B) {
	app, _ := corpus.ByName("Mms")
	pkg := app.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nadroid.AnalyzeContext(context.Background(), pkg, nadroid.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeTraced runs the same pipeline with a span tracer and
// counter set attached, measuring the instrumented-path cost.
func BenchmarkAnalyzeTraced(b *testing.B) {
	app, _ := corpus.ByName("Mms")
	pkg := app.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := obs.WithTracer(context.Background(), obs.NewTracer())
		ctx = obs.WithMetrics(ctx, obs.NewMetrics())
		if _, err := nadroid.AnalyzeContext(ctx, pkg, nadroid.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinePhases reports the §8.8 phase split as medians over
// several instrumented runs, alongside the deep counter medians
// (points-to iterations, datalog facts, schedules explored). With
// -benchtime 1x this still yields medians: each iteration samples the
// pipeline multiple times.
func BenchmarkPipelinePhases(b *testing.B) {
	const samples = 5
	app, _ := corpus.ByName("Mms")
	pkg := app.Build()
	median := func(v []float64) float64 {
		sort.Float64s(v)
		return v[len(v)/2]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phaseMS := map[string][]float64{}
		counters := map[string][]float64{}
		for s := 0; s < samples; s++ {
			m := obs.NewMetrics()
			ctx := obs.WithMetrics(context.Background(), m)
			res, err := nadroid.AnalyzeContext(ctx, pkg, nadroid.Options{
				Validate: true,
				Explore:  explore.Options{MaxSchedules: 200},
			})
			if err != nil {
				b.Fatal(err)
			}
			ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
			phaseMS["modeling-ms"] = append(phaseMS["modeling-ms"], ms(res.Timing.Modeling))
			phaseMS["detection-ms"] = append(phaseMS["detection-ms"], ms(res.Timing.Detection))
			phaseMS["filtering-ms"] = append(phaseMS["filtering-ms"], ms(res.Timing.Filtering))
			phaseMS["validation-ms"] = append(phaseMS["validation-ms"], ms(res.Timing.Validation))
			for _, key := range []string{"pointsto_iterations", "datalog_facts", "validation_schedules_executed"} {
				counters[key] = append(counters[key], float64(m.Get(key)))
			}
		}
		for name, v := range phaseMS {
			b.ReportMetric(median(v), name)
		}
		for name, v := range counters {
			b.ReportMetric(median(v), name)
		}
	}
}

// Phase benchmarks split §8.8's pipeline cost on a mid-sized app (Mms).

func phaseApp(b *testing.B) *threadify.Model {
	b.Helper()
	app, _ := corpus.ByName("Mms")
	m, err := threadify.Build(app.Build(), threadify.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkPhaseModeling measures threadification (§4) alone.
func BenchmarkPhaseModeling(b *testing.B) {
	app, _ := corpus.ByName("Mms")
	pkg := app.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := threadify.Build(pkg, threadify.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhasePointsTo measures the k-object-sensitive points-to
// solve (§5's Chord substitute) alone: modeling setup (component
// discovery, entry seeding, oracle construction) runs once outside the
// timer, and each iteration re-solves from scratch. The iteration and
// points-to fact counts double as a regression guard on the solver's
// work, independent of wall clock.
func BenchmarkPhasePointsTo(b *testing.B) {
	app, _ := corpus.ByName("Mms")
	si, err := threadify.PrepareSolve(app.Build(), threadify.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var st pointsto.SolveStats
	for i := 0; i < b.N; i++ {
		res := pointsto.SolveWithSynthetics(si.H, si.Synths, si.Entries, si.Opts)
		st = res.Stats()
	}
	b.ReportMetric(float64(st.Iterations), "iterations")
	b.ReportMetric(float64(st.VarFacts), "var-facts")
	b.ReportMetric(float64(st.Objects), "objects")
	b.ReportMetric(float64(st.MCtxs), "mctxs")
}

// BenchmarkPhaseDetection splits the detection phase per detector:
// "context" measures the shared analysis state (accesses, escape, MHB,
// Datalog fact base) every detector rides on, and each named
// sub-benchmark measures one registered family against a prebuilt
// context — the per-detector cost the pipeline pays on top of the
// shared build. Rendered as PhaseDetection/<name> in BENCH json.
func BenchmarkPhaseDetection(b *testing.B) {
	m := phaseApp(b)
	b.Run("context", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			detect.BuildContext(context.Background(), "Mms", m, detect.Options{})
		}
	})
	for _, d := range detect.All() {
		d := d
		b.Run(d.Name(), func(b *testing.B) {
			dc := detect.BuildContext(context.Background(), "Mms", m, detect.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Detect(context.Background(), dc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPhaseFiltering measures the filter pipeline (§6) alone:
// detection runs once, and each iteration restores the warning pair sets
// before re-filtering (re-detecting per iteration would dominate the
// wall clock without being measured).
func BenchmarkPhaseFiltering(b *testing.B) {
	m := phaseApp(b)
	d := uaf.Detect(m)
	saved := make([][]uaf.ThreadPair, len(d.Warnings))
	for i, w := range d.Warnings {
		saved[i] = append([]uaf.ThreadPair(nil), w.Pairs...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j, w := range d.Warnings {
			w.Pairs = append(w.Pairs[:0], saved[j]...)
			w.FilteredBy = nil
		}
		b.StartTimer()
		filters.Run(d)
	}
}

// Ablations for the design choices DESIGN.md calls out.

// BenchmarkAblationK1 vs BenchmarkAblationK2: context-sensitivity depth
// (§8.8 notes k trades precision for time). The warning count shows the
// precision cost of k=1.
func benchmarkK(b *testing.B, k int) {
	app, _ := corpus.ByName("FireFox")
	pkg := app.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := threadify.Build(pkg, threadify.Options{K: k})
		if err != nil {
			b.Fatal(err)
		}
		d := uaf.Detect(m)
		st := filters.Run(d)
		b.ReportMetric(float64(st.Potential), "potential")
		b.ReportMetric(float64(st.AfterUnsound), "surviving")
	}
}

func BenchmarkAblationK1(b *testing.B) { benchmarkK(b, 1) }
func BenchmarkAblationK2(b *testing.B) { benchmarkK(b, 2) }
func BenchmarkAblationK3(b *testing.B) { benchmarkK(b, 3) }

// BenchmarkAblationNoEscape disables thread-escape pruning: every
// aliased pair races, showing how much Chord's escape analysis buys.
func BenchmarkAblationNoEscape(b *testing.B) {
	app, _ := corpus.ByName("FireFox")
	pkg := app.Build()
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr := race.Detect(m, race.Options{UseFreeOnly: true, SkipEscape: true})
		d := uaf.Group(m, rr)
		b.ReportMetric(float64(d.AliveCount()), "potential")
	}
}

// BenchmarkEscapeAnalysis isolates the Datalog escape computation.
func BenchmarkEscapeAnalysis(b *testing.B) {
	m := phaseApp(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		escape.Analyze(m)
	}
}

// BenchmarkDEvAAnalysis isolates the baseline's cost for comparison with
// BenchmarkPhaseDetection.
func BenchmarkDEvAAnalysis(b *testing.B) {
	app, _ := corpus.ByName("Mms")
	pkg := app.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deva.Analyze(pkg)
	}
}

// Cold-start cache benchmarks: the same analysis from dexasm source,
// against an empty store (cold: parse + model + solve + write the blob)
// and a populated one (warm: decode the blob, skip parse and modeling).
// The pair quantifies the binary cache's cold-start elimination.

func BenchmarkAnalyzeSourceCold(b *testing.B) {
	app, _ := corpus.ByName("Mms")
	src := dexasm.Format(app.Build())
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.Open(b.TempDir(), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := nadroid.AnalyzeSource(context.Background(), src,
			nadroid.Options{Store: st, IRCache: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeSourceWarm(b *testing.B) {
	app, _ := corpus.ByName("Mms")
	src := dexasm.Format(app.Build())
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opts := nadroid.Options{Store: st, IRCache: true}
	if _, err := nadroid.AnalyzeSource(context.Background(), src, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nadroid.AnalyzeSource(context.Background(), src, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusWarmSweep is the acceptance sweep for the derived
// caches: the full 27-app corpus, analyzed and validated against a
// warmed store, sequentially. Modeling is replaced by blob decode and
// validation by witness replay, so an iteration is the steady-state
// cost of re-auditing the whole corpus.
func BenchmarkCorpusWarmSweep(b *testing.B) {
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	type unit struct {
		name string
		src  string
	}
	var work []unit
	for _, app := range corpus.Apps() {
		work = append(work, unit{app.Name(), dexasm.Format(app.Build())})
	}
	sweep := func() int {
		harmful := 0
		for _, u := range work {
			res, err := nadroid.AnalyzeSource(context.Background(), u.src, nadroid.Options{
				Validate: true,
				Explore:  explore.Options{MaxSchedules: 3000},
				Store:    st,
				IRCache:  true,
			})
			if err != nil {
				b.Fatalf("%s: %v", u.name, err)
			}
			harmful += len(res.Harmful)
		}
		return harmful
	}
	sweep() // populate the caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(sweep()), "true-harmful")
	}
}

// BenchmarkCorpusGeneration measures app synthesis alone (excluded from
// all pipeline numbers).
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, app := range corpus.Apps() {
			app.Build()
		}
	}
}

func pct(n, of int) float64 {
	if of == 0 {
		return 0
	}
	return 100 * float64(n) / float64(of)
}

// BenchmarkNoSleepDetection measures the §9 extension over the corpus
// model with the most threads.
func BenchmarkNoSleepDetection(b *testing.B) {
	m := phaseApp(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nosleep.Detect(m)
	}
}

// BenchmarkDynamicDetector measures the §2.3 comparator: one recorded
// execution plus offline HB race detection.
func BenchmarkDynamicDetector(b *testing.B) {
	app, _ := corpus.ByName("ConnectBot")
	pkg := app.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := interp.NewWorld(pkg, interp.Options{Record: true})
		interp.Run(w, nil)
		races := dynrace.Analyze(w.Recorded(), dynrace.Options{UseFreeOnly: true})
		b.ReportMetric(float64(len(races)), "dynamic-races")
	}
}

// Incremental re-analysis benchmarks (PR 9): the one-method-edit
// turnaround. Setup analyzes the pristine app into a store; each
// iteration re-analyzes a body-edited variant, which anchors on the
// stored base run and re-derives only the changed method's facts. The
// mutated variant's own cache artifacts are deleted between iterations
// so every iteration measures the incremental path, not a blob replay.

// wipeNewCacheFiles removes ircache/incr files that appeared after the
// baseline snapshot, so the next iteration's mutated app misses the
// blob cache and anchors on the pristine base run again.
func wipeNewCacheFiles(b *testing.B, dir string, baseline map[string]bool) {
	b.Helper()
	for _, sub := range []string{"ircache", "incr"} {
		names, err := filepath.Glob(filepath.Join(dir, sub, "*"))
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range names {
			if !baseline[n] {
				if err := os.Remove(n); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func cacheFileSnapshot(b *testing.B, dir string) map[string]bool {
	b.Helper()
	seen := make(map[string]bool)
	for _, sub := range []string{"ircache", "incr"} {
		names, err := filepath.Glob(filepath.Join(dir, sub, "*"))
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range names {
			seen[n] = true
		}
	}
	return seen
}

func BenchmarkAnalyzeSourceIncremental(b *testing.B) {
	app, _ := corpus.ByName("Mms")
	src := dexasm.Format(app.Build())
	mutated := app.Build()
	mutations[0].fn(b, mutated)
	mutSrc := dexasm.Format(mutated)

	dir := b.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opts := nadroid.Options{Store: st, IRCache: true, Incremental: true}
	if _, err := nadroid.AnalyzeSource(context.Background(), src, opts); err != nil {
		b.Fatal(err)
	}
	baseline := cacheFileSnapshot(b, dir)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := nadroid.AnalyzeSource(context.Background(), mutSrc, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Disposition != nadroid.DispositionIncremental {
			b.Fatalf("disposition = %q, want incremental", res.Disposition)
		}
		b.StopTimer()
		wipeNewCacheFiles(b, dir, baseline)
		b.StartTimer()
	}
}

// BenchmarkTable1IncrementalEdit sweeps the whole Table-1 corpus: every
// app gets a one-method body edit and an incremental re-analysis
// against its stored base run. The incremental-runs metric confirms the
// sweep stayed on the fast path.
func BenchmarkTable1IncrementalEdit(b *testing.B) {
	dir := b.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opts := nadroid.Options{Store: st, IRCache: true, Incremental: true}
	type unit struct{ name, mutSrc string }
	var work []unit
	for _, app := range corpus.Apps() {
		if _, err := nadroid.AnalyzeSource(context.Background(), dexasm.Format(app.Build()), opts); err != nil {
			b.Fatalf("%s: %v", app.Name(), err)
		}
		mutated := app.Build()
		mutations[0].fn(b, mutated)
		work = append(work, unit{app.Name(), dexasm.Format(mutated)})
	}
	baseline := cacheFileSnapshot(b, dir)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		incremental := 0
		for _, u := range work {
			res, err := nadroid.AnalyzeSource(context.Background(), u.mutSrc, opts)
			if err != nil {
				b.Fatalf("%s: %v", u.name, err)
			}
			if res.Disposition == nadroid.DispositionIncremental {
				incremental++
			}
		}
		b.ReportMetric(float64(incremental), "incremental-runs")
		b.StopTimer()
		wipeNewCacheFiles(b, dir, baseline)
		b.StartTimer()
	}
}
