package nadroid_test

import (
	"strings"
	"testing"

	"nadroid"
	"nadroid/internal/corpus"
	"nadroid/internal/explore"
)

func TestAnalyzeFullPipeline(t *testing.T) {
	app, ok := corpus.ByName("ConnectBot")
	if !ok {
		t.Fatal("missing corpus app")
	}
	res, err := nadroid.Analyze(app.Build(), nadroid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AfterUnsound != 13 {
		t.Errorf("surviving = %d, want 13", res.Stats.AfterUnsound)
	}
	if res.Report == nil || len(res.Report.Entries) != 13 {
		t.Error("report must list the survivors")
	}
	if res.Timing.Detection <= 0 {
		t.Error("timing must be recorded")
	}
	if res.Harmful != nil {
		t.Error("Harmful must be nil without Validate")
	}
}

func TestAnalyzeSoundOnly(t *testing.T) {
	app, _ := corpus.ByName("ConnectBot")
	soundOnly, err := nadroid.Analyze(app.Build(), nadroid.Options{SkipUnsoundFilters: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := nadroid.Analyze(app.Build(), nadroid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if soundOnly.Stats.AfterUnsound < full.Stats.AfterUnsound {
		t.Errorf("sound-only must keep at least as many warnings: %d vs %d",
			soundOnly.Stats.AfterUnsound, full.Stats.AfterUnsound)
	}
	if soundOnly.Stats.AfterSound != full.Stats.AfterSound {
		t.Errorf("sound stage must agree: %d vs %d", soundOnly.Stats.AfterSound, full.Stats.AfterSound)
	}
}

func TestAnalyzeNoFiltersKeepsPotential(t *testing.T) {
	app, _ := corpus.ByName("ConnectBot")
	res, err := nadroid.Analyze(app.Build(), nadroid.Options{
		SkipSoundFilters:   true,
		SkipUnsoundFilters: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AfterUnsound != res.Stats.Potential {
		t.Errorf("no filters: %d != potential %d", res.Stats.AfterUnsound, res.Stats.Potential)
	}
}

func TestAnalyzeK1IsLessPrecise(t *testing.T) {
	app, _ := corpus.ByName("FireFox")
	k1, err := nadroid.Analyze(app.Build(), nadroid.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := nadroid.Analyze(app.Build(), nadroid.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if k1.Stats.Potential < k2.Stats.Potential {
		t.Errorf("k=1 must not report fewer potential warnings: %d vs %d",
			k1.Stats.Potential, k2.Stats.Potential)
	}
}

func TestAnalyzeWithValidation(t *testing.T) {
	app, _ := corpus.ByName("ConnectBot")
	res, err := nadroid.Analyze(app.Build(), nadroid.Options{
		Validate: true,
		Explore:  explore.Options{MaxSchedules: 3000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Harmful) != 13 {
		t.Errorf("validated = %d, want 13", len(res.Harmful))
	}
	for _, w := range res.Harmful {
		if !strings.HasPrefix(w.Field.Class, "ConnectBot/") {
			t.Errorf("unexpected field %v", w.Field)
		}
	}
}
