// nadroid_explain_test.go is the acceptance test for the provenance
// subsystem: analyzing an app with one injected EC-PC UAF in provenance
// mode must yield an evidence record whose Datalog derivation bottoms
// out in exactly the injected accesses, whose filter trail covers the
// full §6 pipeline, and whose every cited fact exists in the engine
// database — and the record must arrive identically through the CLI
// store path and the HTTP explain endpoint, for any worker count.
package nadroid_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nadroid"
	"nadroid/internal/corpus"
	"nadroid/internal/datalog"
	"nadroid/internal/detect"
	"nadroid/internal/evidence"
	"nadroid/internal/server"
	"nadroid/internal/store"
)

func TestExplainEndToEnd(t *testing.T) {
	app, ok := corpus.ByName("Swiftnotes")
	if !ok {
		t.Fatal("Swiftnotes missing from corpus")
	}
	injected, sites := app.Spec.BuildInjected([]corpus.InjectionKind{corpus.InjectECPC})
	if len(sites) != 1 {
		t.Fatalf("injected sites = %d, want 1", len(sites))
	}

	// The same analysis at both ends of the worker range: provenance must
	// not depend on evaluation parallelism.
	byWorkers := make(map[int][]byte)
	var res *nadroid.Result
	var fp string
	for _, workers := range []int{1, 8} {
		r, err := nadroid.AnalyzeContext(context.Background(), injected,
			nadroid.Options{Provenance: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Evidence) == 0 {
			t.Fatal("provenance mode produced no evidence records")
		}
		blob, err := json.Marshal(r.Evidence)
		if err != nil {
			t.Fatal(err)
		}
		byWorkers[workers] = blob
		res = r
	}
	if string(byWorkers[1]) != string(byWorkers[8]) {
		t.Fatal("evidence differs between -workers 1 and -workers 8")
	}

	// Locate the injected warning: its field names the artificial site.
	for _, e := range res.Report.Entries {
		f := e.Warning.Field.String()
		if strings.Contains(f, sites[0].Class) && strings.Contains(f, sites[0].Field) {
			if fp != "" {
				t.Fatalf("injected site matches more than one warning")
			}
			fp = string(e.Fingerprint)
			if got := e.Category.String(); got != "EC-PC" {
				t.Errorf("injected warning category = %s, want EC-PC", got)
			}
		}
	}
	if fp == "" {
		t.Fatalf("no warning matches the injected site %s.%s", sites[0].Class, sites[0].Field)
	}

	ev, ok := res.EvidenceFor(fp)
	if !ok {
		t.Fatalf("no evidence record for the injected warning %s", fp)
	}
	if ev.Derivation == nil {
		t.Fatal("evidence has no derivation tree")
	}
	if ev.Derivation.Rel != "Racy" {
		t.Errorf("derivation root = %s, want Racy", ev.Derivation.Rel)
	}

	// The derivation's leaf facts are exactly the injected accesses: every
	// access leaf carries the injected field symbol, and the root's tuple
	// names the two access IDs the warning raced on.
	leaves := ev.Derivation.Leaves()
	if len(leaves) == 0 {
		t.Fatal("derivation has no base-fact leaves")
	}
	wantField := ""
	for _, e := range res.Report.Entries {
		if string(e.Fingerprint) == fp {
			wantField = "f:" + e.Warning.Field.String()
		}
	}
	accessLeaves := 0
	for _, leaf := range leaves {
		switch leaf.Rel {
		case "RdAcc", "WrAcc":
			accessLeaves++
			found := false
			for _, col := range leaf.Tuple {
				if col == wantField {
					found = true
				}
			}
			if !found {
				t.Errorf("leaf %s%v does not mention the injected field %s", leaf.Rel, leaf.Tuple, wantField)
			}
		case "Esc":
			// The escape fact is the third premise of the race rule.
		default:
			t.Errorf("unexpected leaf relation %s (tuple %v)", leaf.Rel, leaf.Tuple)
		}
	}
	if accessLeaves != 2 {
		t.Errorf("access leaves = %d, want the 2 injected accesses", accessLeaves)
	}

	// Every fact cited anywhere in the tree exists in the engine database.
	// Detection is deterministic from the model, so rebuilding the context
	// reproduces the engine the derivation was recorded against.
	dc := detect.BuildContext(context.Background(), injected.Name, res.Model,
		detect.Options{Provenance: true})
	detectors, err := detect.Select(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := detect.Run(context.Background(), dc, detectors); err != nil {
		t.Fatal(err)
	}
	var checkFacts func(d *datalog.Derivation)
	checkFacts = func(d *datalog.Derivation) {
		terms := make([]datalog.Sym, len(d.Tuple))
		for i, name := range d.Tuple {
			terms[i] = dc.Engine.Sym(name)
		}
		if !dc.Engine.Has(d.Rel, terms...) {
			t.Errorf("cited fact %s%v not in the engine database", d.Rel, d.Tuple)
		}
		for _, p := range d.Premises {
			checkFacts(p)
		}
	}
	checkFacts(ev.Derivation)

	// The filter trail covers the full default pipeline — three sound and
	// six unsound filters, each with a verdict and a reason — and the
	// surviving warning was kept by every one of them.
	if len(ev.Filters) != 9 {
		t.Fatalf("filter trail has %d verdicts, want all 9 filters: %+v", len(ev.Filters), ev.Filters)
	}
	for _, v := range ev.Filters {
		if v.Filter == "" || v.Reason == "" {
			t.Errorf("filter verdict missing name or reason: %+v", v)
		}
		if !v.Kept {
			t.Errorf("filter %s killed the injected warning: %s", v.Filter, v.Reason)
		}
	}
	if ev.Aliasing == nil {
		t.Error("evidence has no aliasing chain")
	}

	// CLI path: persist the run, retrieve the record through the same
	// store lookup `nadroid explain` uses — by full fingerprint and by
	// unique prefix.
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	persistAnalysis(t, st, injected, server.OptionsWire{Provenance: true})
	wantBlob, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	for _, query := range []string{fp, fp[:12]} {
		raw, _, ok := st.EvidenceFor(app.Name(), query)
		if !ok {
			t.Fatalf("store EvidenceFor(%q) found nothing", query)
		}
		var got evidence.Evidence
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		gotBlob, _ := json.Marshal(&got)
		if string(gotBlob) != string(wantBlob) {
			t.Errorf("stored evidence for %q differs from the in-memory record", query)
		}
	}
	if ren := ev.Render(); !strings.Contains(ren, "derivation:") || !strings.Contains(ren, "filters:") {
		t.Errorf("human rendering lacks derivation/filter sections:\n%s", ren)
	}

	// HTTP path: the explain endpoint serves the same record.
	srv := server.New(server.Config{Workers: 1, Store: st})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(fmt.Sprintf("%s/v1/apps/%s/warnings/%s/explain", ts.URL, app.Name(), fp))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain endpoint status = %d: %s", resp.StatusCode, body)
	}
	var wire struct {
		App      string             `json:"app"`
		Run      string             `json:"run"`
		Evidence *evidence.Evidence `json:"evidence"`
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatalf("explain body not JSON: %v\n%s", err, body)
	}
	if wire.App != app.Name() || wire.Run == "" || wire.Evidence == nil {
		t.Fatalf("explain envelope = %+v, want app/run/evidence", wire)
	}
	httpBlob, _ := json.Marshal(wire.Evidence)
	if string(httpBlob) != string(wantBlob) {
		t.Error("HTTP evidence differs from the in-memory record")
	}

	// Text rendering over HTTP, and a 404 for unknown fingerprints.
	resp, err = http.Get(fmt.Sprintf("%s/v1/apps/%s/warnings/%s/explain?format=text", ts.URL, app.Name(), fp[:12]))
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(text), "derivation:") {
		t.Errorf("text explain status = %d body:\n%s", resp.StatusCode, text)
	}
	resp, err = http.Get(ts.URL + "/v1/apps/" + app.Name() + "/warnings/ffffffffffff/explain")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown fingerprint explain status = %d, want 404", resp.StatusCode)
	}
}
