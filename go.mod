module nadroid

go 1.22
